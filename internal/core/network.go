package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/scpi"
	"github.com/llama-surface/llama/internal/telemetry"
)

// NetworkedSystem runs the same closed loop as System but over real
// sockets on the loopback interface:
//
//   - the controller programs the bias supply through an SCPI/TCP session
//     (the byte-level equivalent of the paper's Python-VISA script), and
//   - the receiver streams RSSI reports to the controller over the binary
//     UDP telemetry protocol.
//
// Virtual time still paces the physics (supply slew, switch rate); only
// the control-plane bytes travel through the kernel.
type NetworkedSystem struct {
	*System

	server    *scpi.Server
	client    *scpi.Client
	collector *telemetry.Collector
	reporter  *telemetry.Reporter
}

// StartNetworked builds the system and brings up both network legs.
// Close must be called to release the sockets.
func StartNetworked(ctx context.Context, cfg Config) (*NetworkedSystem, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	ns := &NetworkedSystem{System: sys}

	tree := scpi.NewTree()
	scpi.Bind(tree, sys.Supply, func() time.Duration { return sys.Clock.Now() })
	ns.server = scpi.NewServer(tree)
	addr, err := ns.server.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ns.client, err = scpi.Dial(ctx, addr)
	if err != nil {
		ns.Close()
		return nil, err
	}
	ns.collector, err = telemetry.NewCollector("127.0.0.1:0")
	if err != nil {
		ns.Close()
		return nil, err
	}
	ns.reporter, err = telemetry.NewReporter(ns.collector.Addr())
	if err != nil {
		ns.Close()
		return nil, err
	}
	return ns, nil
}

// InstrumentID queries the supply's *IDN? over the wire.
func (ns *NetworkedSystem) InstrumentID() (string, error) {
	return ns.client.Query("*IDN?")
}

// Actuator programs both bias channels through the SCPI session, checks
// the instrument error queue, advances virtual time one switch period and
// refreshes the surface from the settled supply outputs.
func (ns *NetworkedSystem) Actuator() control.Actuator {
	return control.ActuatorFunc(func(vx, vy float64) error {
		if err := ns.client.Send(fmt.Sprintf("APPL CH1,%.3f", vx)); err != nil {
			return err
		}
		if err := ns.client.Send(fmt.Sprintf("APPL CH2,%.3f", vy)); err != nil {
			return err
		}
		// SYST:ERR? doubles as the pipeline flush: by the time it
		// answers, both APPLy commands have executed.
		errq, err := ns.client.Query("SYST:ERR?")
		if err != nil {
			return err
		}
		// The second APPLy lands within the 50 Hz window of the first —
		// the instrument reports -213 (init ignored) for it, exactly as
		// the real 2230G would if driven too fast. LLAMA's controller
		// treats the pair as one switch event: re-issue after the dwell.
		ns.Clock.RunFor(ns.cfg.SwitchPeriod)
		if strings.Contains(errq, "-213") {
			if err := ns.client.Send(fmt.Sprintf("APPL CH2,%.3f", vy)); err != nil {
				return err
			}
			if errq2, err := ns.client.Query("SYST:ERR?"); err != nil {
				return err
			} else if !strings.Contains(errq2, "No error") {
				return fmt.Errorf("core: instrument error: %s", errq2)
			}
			ns.Clock.RunFor(ns.cfg.SwitchPeriod)
		} else if !strings.Contains(errq, "No error") {
			return fmt.Errorf("core: instrument error: %s", errq)
		}
		return ns.applySupplyToSurface()
	})
}

// Sensor measures RSSI on the receiver side, ships it through the UDP
// telemetry leg, and hands the controller the collected report.
func (ns *NetworkedSystem) Sensor() control.Sensor {
	return control.SensorFunc(func() (float64, error) {
		rssi := ns.MeasureRSSI()
		if err := ns.reporter.Report(ns.Clock.Now(), rssi, telemetry.FlagSweepActive); err != nil {
			return 0, err
		}
		//lint:allow context control.Sensor has no ctx parameter (hardware sensors are synchronous); the 2s bound only caps a lost-datagram wait
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rep, err := ns.collector.Next(ctx)
		if err != nil {
			return 0, err
		}
		return rep.RSSIdBm, nil
	})
}

// Optimize runs Algorithm 1 with the networked actuator and sensor.
func (ns *NetworkedSystem) Optimize(ctx context.Context, cfg control.SweepConfig) (control.Result, error) {
	return control.CoarseToFine(ctx, cfg, ns.Actuator(), ns.Sensor())
}

// LostReports returns the telemetry loss counter.
func (ns *NetworkedSystem) LostReports() int { return ns.collector.Lost() }

// Close tears down the sockets. Safe to call on a partially started
// system.
func (ns *NetworkedSystem) Close() error {
	var first error
	if ns.reporter != nil {
		if err := ns.reporter.Close(); err != nil && first == nil {
			first = err
		}
	}
	if ns.collector != nil {
		if err := ns.collector.Close(); err != nil && first == nil {
			first = err
		}
	}
	if ns.client != nil {
		if err := ns.client.Close(); err != nil && first == nil {
			first = err
		}
	}
	if ns.server != nil {
		//lint:allow context io.Closer has no ctx parameter; the bounded context only caps the SCPI server drain during teardown
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := ns.server.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
