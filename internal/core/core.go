// Package core assembles the full LLAMA system of Fig. 5: the metasurface
// in a radio scene, the programmable bias supply, the receiver's RSSI
// measurement path, and the centralized controller closing the loop.
//
// Two integrations are provided. System wires the components in-process
// for fast simulation; NetworkedSystem runs the identical control loop
// over real sockets — SCPI over TCP to the supply (as the paper's
// VISA-scripted Tektronix 2230G) and the binary RSSI report protocol over
// UDP from the receiver — so the protocol stack itself is exercised
// end to end.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/psu"
	"github.com/llama-surface/llama/internal/signal"
	"github.com/llama-surface/llama/internal/simclock"
	"github.com/llama-surface/llama/internal/units"
)

// Config describes a closed-loop deployment.
type Config struct {
	// Design is the surface to build (defaults to the paper's optimized
	// FR4 design at the default carrier when zero).
	Design metasurface.Design
	// Mode selects transmissive or reflective deployment.
	Mode metasurface.Mode
	// Geom fixes the scene distances; a zero value defaults to the
	// paper's 48 cm mismatched transmissive bench.
	Geom channel.Geometry
	// TxPowerW is the transmit power (10 mW default).
	TxPowerW float64
	// Env is the propagation environment (absorber default).
	Env channel.Environment
	// Seed drives every random stream in the system.
	Seed int64
	// SamplesPerMeasure is the baseband block length per RSSI estimate
	// (256 default — 256 µs at the 1 MHz sample rate).
	SamplesPerMeasure int
	// SwitchPeriod is the supply dwell per bias state (20 ms default,
	// the 2230G's 50 Hz limit).
	SwitchPeriod time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Design.CenterHz == 0 {
		c.Design = metasurface.OptimizedFR4Design(units.DefaultCarrierHz)
	}
	if c.Geom == (channel.Geometry{}) {
		c.Geom = channel.Geometry{TxRx: 0.48, TxSurface: 0.24, SurfaceRx: 0.24}
	}
	if c.TxPowerW == 0 {
		c.TxPowerW = 10e-3
	}
	if c.Env.Name == "" && len(c.Env.Scatterers) == 0 {
		c.Env = channel.Absorber()
	}
	if c.SamplesPerMeasure == 0 {
		c.SamplesPerMeasure = 256
	}
	if c.SwitchPeriod == 0 {
		c.SwitchPeriod = psu.MinSwitchInterval
	}
	return c
}

// System is the in-process closed loop.
type System struct {
	// Clock is the shared virtual timeline.
	Clock *simclock.Clock
	// Surface is the deployed metasurface.
	Surface *metasurface.Surface
	// Scene is the radio configuration the receiver experiences.
	Scene *channel.Scene
	// Supply is the bias instrument; its slewed output is what actually
	// reaches the varactors.
	Supply *psu.Supply

	cfg  Config
	tone *signal.ToneSource
	rng  *rand.Rand
	buf  []complex128
}

// NewSystem builds and validates the closed loop.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	surf, err := metasurface.New(cfg.Design)
	if err != nil {
		return nil, err
	}
	scene := channel.DefaultScene(surf, cfg.Geom.TxRx)
	scene.Mode = cfg.Mode
	scene.Geom = cfg.Geom
	scene.TxPowerW = cfg.TxPowerW
	scene.Env = cfg.Env
	if err := scene.Validate(); err != nil {
		return nil, err
	}
	supply := psu.New()
	if err := supply.SetOutput(psu.CH1, true); err != nil {
		return nil, err
	}
	if err := supply.SetOutput(psu.CH2, true); err != nil {
		return nil, err
	}
	return &System{
		Clock:   simclock.New(),
		Surface: surf,
		Scene:   scene,
		Supply:  supply,
		cfg:     cfg,
		tone:    signal.NewToneSource(500e3, 1e6, 1),
		rng:     simclock.RNG(cfg.Seed, "core.rssi"),
		buf:     make([]complex128, cfg.SamplesPerMeasure),
	}, nil
}

// Config returns the effective (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// applySupplyToSurface pushes the supply's current *output* voltages into
// the surface model — the physical wiring of Fig. 5.
func (s *System) applySupplyToSurface() error {
	vx, err := s.Supply.OutputVoltage(psu.CH1, s.Clock.Now())
	if err != nil {
		return err
	}
	vy, err := s.Supply.OutputVoltage(psu.CH2, s.Clock.Now())
	if err != nil {
		return err
	}
	s.Surface.SetBias(vx, vy)
	return nil
}

// Actuator returns the control-side bias setter: program the supply,
// dwell one switch period (virtual time), then refresh the surface from
// the settled output.
func (s *System) Actuator() control.Actuator {
	return control.ActuatorFunc(func(vx, vy float64) error {
		if err := s.Supply.SetBoth(vx, vy, s.Clock.Now()); err != nil {
			return fmt.Errorf("core: program supply: %w", err)
		}
		s.Clock.RunFor(s.cfg.SwitchPeriod)
		return s.applySupplyToSurface()
	})
}

// MeasureRSSI simulates one receiver measurement at the current virtual
// time: a block of the transmitted tone through the scene's field
// transfer, plus thermal noise, through the block power estimator.
func (s *System) MeasureRSSI() float64 {
	h := s.Scene.FieldTransfer()
	s.tone.Fill(s.buf)
	// Field scaling: per-sample amplitude carries sqrt(TxPower)·h.
	amp := complex(sqrt(s.Scene.TxPowerW), 0) * h
	signal.Scale(s.buf, amp)
	signal.AddAWGN(s.buf, s.Scene.NoisePowerW(), s.rng)
	return signal.PowerDBm(s.buf)
}

// Sensor returns the control-side measurement source.
func (s *System) Sensor() control.Sensor {
	return control.SensorFunc(func() (float64, error) {
		return s.MeasureRSSI(), nil
	})
}

// Optimize runs Algorithm 1 end to end and leaves the surface at the
// optimum. The elapsed virtual time matches the paper's 0.02·N·T² model.
func (s *System) Optimize(ctx context.Context, cfg control.SweepConfig) (control.Result, error) {
	return control.CoarseToFine(ctx, cfg, s.Actuator(), s.Sensor())
}

// FullScan runs the exhaustive reference sweep.
func (s *System) FullScan(ctx context.Context, cfg control.SweepConfig, stepV float64) (control.Result, error) {
	return control.FullScan(ctx, cfg, stepV, s.Actuator(), s.Sensor())
}

// BaselineDBm returns the received power with the surface absent — the
// "without metasurface" comparison of Figs. 16/17/20/22.
func (s *System) BaselineDBm() float64 {
	bare := *s.Scene
	bare.Surface = nil
	return bare.ReceivedPowerDBm()
}

// CurrentDBm returns the noiseless received power with the surface at its
// present bias.
func (s *System) CurrentDBm() float64 { return s.Scene.ReceivedPowerDBm() }

// CacheStats returns the deployed surface's response-cache counters —
// how much of the closed loop's physics (every sweep measurement
// re-evaluates the surface at the applied bias) was answered from
// memory. See metasurface.CacheStats.
func (s *System) CacheStats() metasurface.CacheStats { return s.Surface.CacheStats() }

// sqrt guards math.Sqrt against the zero-power edge.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
