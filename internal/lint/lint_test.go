package lint

// Golden-diagnostic tests: each check gets one clean fixture package
// (zero findings) and one violating fixture package whose findings are
// asserted exactly, string for string — position, check name and
// message. The suppression directive gets the same treatment: a
// reasoned allow silences exactly its finding, a reason-less or
// unknown-check allow is itself a finding and suppresses nothing.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureBase is the module-relative home of the fixture packages.
const fixtureBase = "internal/lint/testdata/src"

// loadFixtures loads the named fixture dirs (relative to fixtureBase)
// with a config produced by scope, which receives the fixtures'
// module-relative paths in the same order.
func loadFixtures(t *testing.T, scope func(cfg *Config, rels []string), names ...string) *Suite {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var abs []string
	var rels []string
	for _, n := range names {
		rel := fixtureBase + "/" + n
		rels = append(rels, rel)
		abs = append(abs, filepath.Join(root, filepath.FromSlash(rel)))
	}
	cfg := Config{SweepType: "Sweep", ClockPkgs: []string{"internal/simclock"}}
	if scope != nil {
		scope(&cfg, rels)
	}
	s, err := LoadDirs(root, abs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runFixture renders the surviving findings with the fixture base
// stripped, so expectations read as "purity/bad/bad.go:12: ...".
func runFixture(t *testing.T, scope func(cfg *Config, rels []string), names ...string) []string {
	t.Helper()
	var got []string
	for _, f := range loadFixtures(t, scope, names...).Run() {
		got = append(got, strings.TrimPrefix(f.String(), fixtureBase+"/"))
	}
	return got
}

// expectFindings asserts the exact diagnostic lines.
func expectFindings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s), want %d:\n got: %s\nwant: %s",
			len(got), len(want), strings.Join(got, "\n      "), strings.Join(want, "\n      "))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\n got: %s\nwant: %s", i, got[i], want[i])
		}
	}
}

func TestPurityFixtures(t *testing.T) {
	scope := func(cfg *Config, rels []string) { cfg.PurePkgs = rels }
	expectFindings(t, runFixture(t, scope, "purity/clean"), nil)
	expectFindings(t, runFixture(t, scope, "purity/bad"), []string{
		"purity/bad/bad.go:12: [purity] calls time.Now; pure kernels must not read the wall clock (inject a simclock)",
		"purity/bad/bad.go:15: [purity] draws from the global math/rand source (rand.Float64); derive a seeded *rand.Rand from the experiment seed",
		"purity/bad/bad.go:18: [purity] reads the environment (os.Getenv); pure kernels take configuration as arguments",
		"purity/bad/bad.go:24: [purity] iterates a map in a deterministic-output path; collect the keys into a slice and sort it",
	})
}

func TestSweepPurityFixture(t *testing.T) {
	scope := func(cfg *Config, rels []string) { cfg.SweepPkgs = rels }
	expectFindings(t, runFixture(t, scope, "purity/sweep"), []string{
		"purity/sweep/sweep.go:28: [purity] calls time.Now; pure kernels must not read the wall clock (inject a simclock)",
		"purity/sweep/sweep.go:35: [purity] calls time.Now; pure kernels must not read the wall clock (inject a simclock)",
	})
}

func TestFloatEncFixtures(t *testing.T) {
	scope := func(cfg *Config, rels []string) { cfg.PersistScopes = rels }
	expectFindings(t, runFixture(t, scope, "floatenc/clean"), nil)
	expectFindings(t, runFixture(t, scope, "floatenc/bad"), []string{
		"floatenc/bad/bad.go:12: [floatenc] strconv.FormatFloat with a non-canonical configuration; persistence paths must use ('g', -1, 64) so every float64 round-trips bit-exactly",
		"floatenc/bad/bad.go:15: [floatenc] formats a float through fmt.Sprintf; persistence paths must encode floats with the blessed strconv 'g'/-1/64 helpers",
		"floatenc/bad/bad.go:18: [floatenc] marshals a float as a JSON number (json.Marshal); JSON numbers reject NaN/±Inf — encode floats as strconv 'g'/-1/64 strings",
	})
}

func TestContextFixtures(t *testing.T) {
	expectFindings(t, runFixture(t, nil, "ctx/clean"), nil)
	expectFindings(t, runFixture(t, nil, "ctx/bad"), []string{
		"ctx/bad/bad.go:8: [context] context.Context is parameter 1 of Run; blocking APIs take ctx first",
		"ctx/bad/bad.go:18: [context] manufactures context.Background; library code must derive from a caller-supplied context",
	})
}

func TestMutexIOFixtures(t *testing.T) {
	expectFindings(t, runFixture(t, nil, "mutex/clean"), nil)
	expectFindings(t, runFixture(t, nil, "mutex/bad"), []string{
		"mutex/bad/bad.go:23: [mutexio] sends on a channel while b.mu is held",
		"mutex/bad/bad.go:29: [mutexio] receives from a channel while b.mu is held",
		"mutex/bad/bad.go:37: [mutexio] calls os.WriteFile (I/O) while b.mu is held",
	})
}

func TestDocLintFixtures(t *testing.T) {
	scope := func(cfg *Config, rels []string) { cfg.DocPkgs = rels }
	expectFindings(t, runFixture(t, scope, "doclint/clean"), nil)
	expectFindings(t, runFixture(t, scope, "doclint/bad"), []string{
		"doclint/bad/bad.go:1: [doclint] package doclintbad has no package doc comment",
		"doclint/bad/bad.go:3: [doclint] exported value Answer has no doc comment",
		"doclint/bad/bad.go:5: [doclint] exported type Widget has no doc comment",
		"doclint/bad/bad.go:7: [doclint] exported function Greet has no doc comment",
	})
}

func TestAllowDirective(t *testing.T) {
	scope := func(cfg *Config, rels []string) { cfg.PurePkgs = rels }
	// A reasoned allow (line above or same line) suppresses exactly its
	// finding.
	expectFindings(t, runFixture(t, scope, "allow/clean"), nil)
	// A reason-less allow is rejected and suppresses nothing; so is an
	// allow naming an unknown check.
	expectFindings(t, runFixture(t, scope, "allow/bad"), []string{
		"allow/bad/bad.go:10: [allow] lint:allow purity has no reason; the reason is mandatory",
		"allow/bad/bad.go:11: [purity] calls time.Now; pure kernels must not read the wall clock (inject a simclock)",
		"allow/bad/bad.go:16: [allow] lint:allow names unknown check \"speed\"",
		"allow/bad/bad.go:17: [purity] calls time.Now; pure kernels must not read the wall clock (inject a simclock)",
	})
}

// TestDefaultConfigScopesExist pins the default scoping to directories
// that actually exist, so a package rename cannot silently unscope a
// check.
func TestDefaultConfigScopesExist(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	var paths []string
	paths = append(paths, cfg.PurePkgs...)
	paths = append(paths, cfg.SweepPkgs...)
	paths = append(paths, cfg.ClockPkgs...)
	for _, scope := range cfg.PersistScopes {
		paths = append(paths, scope)
	}
	for _, p := range paths {
		if strings.HasSuffix(p, "/...") {
			p = strings.TrimSuffix(p, "/...")
		}
		if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(p))); err != nil {
			t.Errorf("config names %s, which does not exist: %v", p, err)
		}
	}
}
