package lint

// The purity check: pure-kernel packages (Config.PurePkgs) and the
// Point/Finish bodies of Sweep declarations in Config.SweepPkgs must
// be deterministic functions of their arguments. Four things break
// that statically:
//
//   - reading the wall clock (time.Now and friends) — the blessed
//     exception is the injected simclock (Config.ClockPkgs);
//   - drawing from the global math/rand source (rand.Intn, …) instead
//     of a seeded *rand.Rand;
//   - reading the environment (os.Getenv, …);
//   - iterating a map into ordered output — blessed only as the
//     collect-keys-then-sort idiom (a range whose body is a single
//     append of the key or value into a slice that the same function
//     passes to sort.* / slices.Sort*).
//
// The analysis is intraprocedural: a sweep Point that calls an impure
// helper in a non-pure package is not traced (the helper's own package
// should be in PurePkgs when it matters).

import (
	"go/ast"
	"go/types"
)

// clockFns are the time functions that read the wall clock.
var clockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// randConstructors are the math/rand functions that build seeded
// generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// envFns are the os functions that read the process environment.
var envFns = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// Purity is the purity check over pure-kernel packages and sweep
// point-functions.
var Purity = &Check{
	Name: "purity",
	Desc: "pure kernels must not read clocks, global rand, the environment, or iterate maps into ordered output",
	Run:  runPurity,
}

// runPurity dispatches on scope: whole package for PurePkgs, sweep
// Point/Finish bodies for SweepPkgs.
func runPurity(s *Suite, p *Package, report Reporter) {
	switch {
	case matchAny(p.Rel, s.Config.PurePkgs):
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				walkPure(s, p, decl, enclosingBody(decl), report)
			}
		}
	case matchAny(p.Rel, s.Config.SweepPkgs):
		for _, body := range sweepBodies(s, p) {
			walkPure(s, p, body, body, report)
		}
	}
}

// enclosingBody returns the function body a top-level declaration
// provides as the sort-scope for blessed map ranges (nil for
// non-function declarations).
func enclosingBody(decl ast.Decl) ast.Node {
	if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
		return fd.Body
	}
	return nil
}

// walkPure inspects node for impure constructs. sortScope is the
// function body searched for the sorting half of the blessed map-range
// idiom; function literals open their own scope.
func walkPure(s *Suite, p *Package, node ast.Node, sortScope ast.Node, report Reporter) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if v.Body != node { // recurse with the literal's own sort-scope
				walkPure(s, p, v.Body, v.Body, report)
				return false
			}
		case *ast.CallExpr:
			checkPureCall(s, p, v, report)
		case *ast.RangeStmt:
			if isMapType(p.Info, v.X) && !blessedMapRange(p, v, sortScope) {
				report(v.Pos(), "iterates a map in a deterministic-output path; collect the keys into a slice and sort it")
			}
		}
		return true
	})
}

// checkPureCall flags calls into the clock, the global rand source,
// and the environment.
func checkPureCall(s *Suite, p *Package, call *ast.CallExpr, report Reporter) {
	path, name, ok := pkgFuncCall(p.Info, call)
	if !ok {
		return
	}
	if matchAny(path, s.Config.ClockPkgs) || hasPathSuffix(path, s.Config.ClockPkgs) {
		return // the blessed deterministic clock
	}
	switch {
	case path == "time" && clockFns[name]:
		report(call.Pos(), "calls time.%s; pure kernels must not read the wall clock (inject a simclock)", name)
	case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
		report(call.Pos(), "draws from the global math/rand source (rand.%s); derive a seeded *rand.Rand from the experiment seed", name)
	case path == "os" && envFns[name]:
		report(call.Pos(), "reads the environment (os.%s); pure kernels take configuration as arguments", name)
	}
}

// hasPathSuffix reports whether an import path ends in one of the
// module-relative patterns (so "internal/simclock" blesses the full
// module path).
func hasPathSuffix(path string, patterns []string) bool {
	for _, pat := range patterns {
		if path == pat || len(path) > len(pat) && path[len(path)-len(pat)-1] == '/' && path[len(path)-len(pat):] == pat {
			return true
		}
	}
	return false
}

// blessedMapRange reports whether a range over a map is the canonical
// deterministic idiom: the body is exactly one append of the key or
// value into a slice, and the enclosing function passes that slice to
// a sort.* / slices.Sort* call.
func blessedMapRange(p *Package, rng *ast.RangeStmt, sortScope ast.Node) bool {
	if sortScope == nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst := identObj(p.Info, assign.Lhs[0])
	if dst == nil {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, isIdent := call.Fun.(*ast.Ident); !isIdent || fn.Name != "append" {
		return false
	}
	if identObj(p.Info, call.Args[0]) != dst {
		return false
	}
	item := identObj(p.Info, call.Args[1])
	if item == nil || (item != identObj(p.Info, rng.Key) && item != identObj(p.Info, rng.Value)) {
		return false
	}
	// The collected slice must reach a sort call somewhere in the same
	// function body.
	sorted := false
	ast.Inspect(sortScope, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, _, ok := pkgFuncCall(p.Info, call)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if identObj(p.Info, arg) == dst {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// sweepBodies collects the function bodies declared as Point or Finish
// of a Config.SweepType composite literal: literal functions in place,
// plus same-package functions referenced by name.
func sweepBodies(s *Suite, p *Package) []ast.Node {
	typeName := s.Config.SweepType
	if typeName == "" {
		typeName = "Sweep"
	}
	// Index the package's function declarations by object so named
	// Point/Finish references resolve to their bodies.
	byObj := map[any]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					byObj[obj] = fd
				}
			}
		}
	}
	var bodies []ast.Node
	seen := map[ast.Node]bool{}
	add := func(n ast.Node) {
		if n != nil && !seen[n] {
			seen[n] = true
			bodies = append(bodies, n)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if !isNamedType(p, cl, typeName) {
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || (key.Name != "Point" && key.Name != "Finish") {
					continue
				}
				switch v := kv.Value.(type) {
				case *ast.FuncLit:
					add(v.Body)
				case *ast.Ident:
					if fd := byObj[identObj(p.Info, v)]; fd != nil {
						add(fd.Body)
					}
				case *ast.SelectorExpr:
					if sel, ok := p.Info.Selections[v]; ok {
						if fd := byObj[sel.Obj()]; fd != nil {
							add(fd.Body)
						}
					}
				}
			}
			return true
		})
	}
	return bodies
}

// isNamedType reports whether the composite literal's type is the
// named struct (or a pointer to it) declared in this package.
func isNamedType(p *Package, cl *ast.CompositeLit, name string) bool {
	t := p.Info.TypeOf(cl)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() == p.TypesPkg
}
