package doclintbad

const Answer = 42

type Widget struct{}

func Greet() string { return "hi" }
