// Package doclintclean is a lint fixture: every exported identifier is
// documented the way godoc renders it.
package doclintclean

// Answer is the documented constant.
const Answer = 42

// Widget is the documented type.
type Widget struct{}

// Greet is the documented function.
func Greet() string { return "hi" }

// Name is the documented method.
func (Widget) Name() string { return "widget" }
