// Package ctxclean is a lint fixture: the caller-supplied context
// comes first and is never manufactured locally.
package ctxclean

import "context"

// Run consults the caller's context between steps.
func Run(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}
