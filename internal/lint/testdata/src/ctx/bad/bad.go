// Package ctxbad is a lint fixture: both context-discipline
// violations.
package ctxbad

import "context"

// Run takes its context last instead of first.
func Run(n int, ctx context.Context) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Detach manufactures a root context in library code.
func Detach() context.Context { return context.Background() }
