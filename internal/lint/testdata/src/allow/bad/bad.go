// Package allowbad is a lint fixture: misused suppression directives
// are findings themselves and suppress nothing.
package allowbad

import "time"

// Boot suppresses without a reason: the directive is rejected and the
// finding it meant to cover survives.
func Boot() int64 {
	//lint:allow purity
	return time.Now().UnixNano()
}

// Later names a check that does not exist.
func Later() int64 {
	//lint:allow speed because the deadline is close
	return time.Now().UnixNano()
}
