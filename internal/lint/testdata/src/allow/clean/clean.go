// Package allowclean is a lint fixture: a suppression directive with a
// reason silences exactly its finding.
package allowclean

import "time"

// Boot reads the wall clock once, deliberately, with the exception
// documented on the line above.
func Boot() int64 {
	//lint:allow purity fixture: the startup stamp is display-only and never reaches a result table
	return time.Now().UnixNano()
}

// Stamp documents its exception on the offending line itself.
func Stamp() int64 { return time.Now().UnixNano() } //lint:allow purity fixture: same-line directive
