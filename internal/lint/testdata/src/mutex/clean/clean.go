// Package mutexclean is a lint fixture: state changes under the lock,
// blocking happens outside it.
package mutexclean

import (
	"os"
	"sync"
)

// Queue hands sequence numbers to a consumer channel.
type Queue struct {
	mu   sync.Mutex
	next int
	out  chan int
}

// Push stamps under the lock and sends outside it.
func (q *Queue) Push() {
	q.mu.Lock()
	v := q.next
	q.next++
	q.mu.Unlock()
	q.out <- v
}

// Save snapshots under the lock and writes outside it.
func (q *Queue) Save(path string) error {
	q.mu.Lock()
	v := q.next
	q.mu.Unlock()
	return os.WriteFile(path, []byte{byte(v)}, 0o644)
}
