// Package mutexbad is a lint fixture: each method blocks with its
// mutex held a different way.
package mutexbad

import (
	"os"
	"sync"
)

// Box serializes its writers behind one mutex.
type Box struct {
	mu  sync.Mutex
	in  chan int
	out chan int
	n   int
}

// Send sends on a channel while mu is held (held to the end by the
// defer).
func (b *Box) Send() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.out <- b.n
}

// Recv receives from a channel between Lock and Unlock.
func (b *Box) Recv() {
	b.mu.Lock()
	b.n = <-b.in
	b.mu.Unlock()
}

// Save performs file I/O while mu is held.
func (b *Box) Save(path string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return os.WriteFile(path, []byte{byte(b.n)}, 0o644)
}
