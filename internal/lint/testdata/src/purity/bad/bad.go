// Package puritybad is a lint fixture: each function breaks the purity
// contract one way.
package puritybad

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Draw uses the global math/rand source.
func Draw() float64 { return rand.Float64() }

// Home reads the environment.
func Home() string { return os.Getenv("HOME") }

// Join iterates a map straight into ordered output: collected but
// never sorted.
func Join(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
