// Package sweepfix is a lint fixture: in a sweep package only the
// Point and Finish bodies of Sweep literals must be pure — the
// surrounding registration code may do what it likes.
package sweepfix

import "time"

// Sweep mirrors the experiments.Sweep shape the purity check scopes
// to.
type Sweep struct {
	// Points is the axis length.
	Points int
	// Point computes one point; it must be pure in (seed, i).
	Point func(seed int64, i int) float64
	// Finish post-processes the assembled rows.
	Finish func() error
}

// Register may read the clock: it is registration plumbing, not a
// point kernel, and the check must not flag it.
func Register() int64 { return time.Now().UnixNano() }

// Fixture declares one sweep with an impure literal Point and a named
// impure Finish.
var Fixture = Sweep{
	Points: 1,
	Point: func(seed int64, i int) float64 {
		return float64(time.Now().UnixNano()) + float64(seed) + float64(i)
	},
	Finish: finishImpure,
}

// finishImpure reads the clock inside a Finish hook.
func finishImpure() error {
	_ = time.Now()
	return nil
}
