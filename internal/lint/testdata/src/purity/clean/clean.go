// Package purityclean is a lint fixture: the deterministic idioms the
// purity check must accept in a pure-kernel package.
package purityclean

import (
	"math/rand"
	"sort"

	"github.com/llama-surface/llama/internal/simclock"
)

// Sum draws from a seeded generator — deterministic in the seed.
func Sum(seed int64, n int) float64 {
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for i := 0; i < n; i++ {
		total += rng.Float64()
	}
	return total
}

// Keys iterates a map the blessed way: collect, then sort.
func Keys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Jitter seeds a per-stream generator through the blessed simclock
// helpers instead of the global source.
func Jitter(seed int64) float64 { return simclock.RNG(seed, "fixture").Float64() }
