// Package floatencbad is a lint fixture: each function loses float
// bits a different way.
package floatencbad

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Fixed rounds to three digits — NaN survives but precision does not.
func Fixed(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// Verb formats a float through fmt's default verb.
func Verb(v float64) string { return fmt.Sprintf("%v", v) }

// Number marshals floats as JSON numbers, which reject NaN and ±Inf.
func Number(vs []float64) ([]byte, error) { return json.Marshal(vs) }
