// Package floatencclean is a lint fixture: the blessed lossless float
// encodings a persistence path may use.
package floatencclean

import (
	"fmt"
	"strconv"
)

// Encode renders v in the canonical lossless form.
func Encode(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Append appends the canonical form to a scratch buffer.
func Append(dst []byte, v float64) []byte { return strconv.AppendFloat(dst, v, 'g', -1, 64) }

// Label formats no floats, so fmt is fine.
func Label(id string, seed int64) string { return fmt.Sprintf("%s/%d", id, seed) }
