package lint

// The mutexio check: while a sync.Mutex or sync.RWMutex is provably
// held in a function body, the function must not block on a channel
// (send, receive, select, range-over-channel) or perform direct I/O
// (package-level calls into os, net or net/http, or method calls on
// their types). A lock held across a blocking operation is the classic
// shape of both deadlocks (the unblocking party needs the same lock)
// and tail-latency collapse (every reader queues behind one fsync).
//
// The analysis is deliberately intraprocedural and linear, so every
// finding is provable:
//
//   - x.Lock()/x.RLock() adds x to the held set, x.Unlock()/x.RUnlock()
//     removes it, and `defer x.Unlock()` leaves it held to the end of
//     the body (which is exactly the hazard the check looks for);
//   - nested blocks (if/for/switch bodies) are analyzed with a copy of
//     the held set and their lock-state changes are discarded at the
//     outer level — an early-exit `if { x.Unlock(); return }` does not
//     release the lock for the code after the if;
//   - function literals are separate scopes starting unlocked, and
//     `go`/`defer` bodies are skipped (they do not run here);
//   - calls to helpers in the same package are not traced — a helper
//     that does I/O under the caller's lock must carry its own
//     finding via its own locks or a review.
//
// close(ch) is exempt: closing never blocks.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ioPkgs are the packages whose calls count as I/O under a lock.
var ioPkgs = map[string]bool{
	"os": true, "net": true, "net/http": true,
}

// purePkgFns are functions in ioPkgs that never touch the outside
// world (error predicates, address parsing) and are safe under a lock.
var purePkgFns = map[string]bool{
	"os.IsNotExist": true, "os.IsExist": true, "os.IsPermission": true,
	"os.IsTimeout": true, "os.Getenv": true, "os.LookupEnv": true,
	"net.JoinHostPort": true, "net.SplitHostPort": true, "net.ParseIP": true,
	"net.ParseMAC": true, "net.ParseCIDR": true, "net.IPv4": true,
	"net/http.StatusText": true, "net/http.CanonicalHeaderKey": true,
}

// MutexIO is the lock-vs-blocking-operation check.
var MutexIO = &Check{
	Name: "mutexio",
	Desc: "no channel operation or direct I/O while a sync.Mutex/RWMutex is provably held in the same function body",
	Run:  runMutexIO,
}

// runMutexIO analyzes every function body in the package.
func runMutexIO(s *Suite, p *Package, report Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeFuncBody(p, fd.Body, report)
		}
	}
}

// lockState is the set of held lock expressions (rendered with
// types.ExprString) mapped to the position that acquired them.
type lockState map[string]token.Pos

// clone copies the state for a nested block.
func (l lockState) clone() lockState {
	c := make(lockState, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// heldName returns a deterministic representative held lock for
// messages.
func (l lockState) heldName() string {
	names := make([]string, 0, len(l))
	for k := range l {
		names = append(names, k)
	}
	sort.Strings(names)
	return names[0]
}

// analyzeFuncBody walks one function body linearly, tracking held
// locks, and dispatches nested function literals as fresh scopes.
func analyzeFuncBody(p *Package, body *ast.BlockStmt, report Reporter) {
	analyzeBlock(p, body.List, lockState{}, report)
	// Function literals anywhere in the body get their own unlocked
	// analysis.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			analyzeBlock(p, lit.Body.List, lockState{}, report)
		}
		return true
	})
}

// analyzeBlock processes statements in order against the held set.
func analyzeBlock(p *Package, stmts []ast.Stmt, held lockState, report Reporter) {
	for _, stmt := range stmts {
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if key, op, isLock := lockOp(p, call); isLock {
					switch op {
					case "Lock", "RLock":
						held[key] = call.Pos()
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
			}
			flagHazards(p, st, held, report)
		case *ast.DeferStmt:
			// defer x.Unlock() keeps the lock held to the end of the
			// body; any other defer's call runs at return, outside this
			// linear order — skip it.
			continue
		case *ast.GoStmt:
			continue // runs on another goroutine
		case *ast.IfStmt:
			flagHazards(p, st.Init, held, report)
			flagHazards(p, st.Cond, held, report)
			analyzeBlock(p, st.Body.List, held.clone(), report)
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				analyzeBlock(p, e.List, held.clone(), report)
			case *ast.IfStmt:
				analyzeBlock(p, []ast.Stmt{e}, held.clone(), report)
			}
		case *ast.ForStmt:
			flagHazards(p, st.Init, held, report)
			flagHazards(p, st.Cond, held, report)
			flagHazards(p, st.Post, held, report)
			analyzeBlock(p, st.Body.List, held.clone(), report)
		case *ast.RangeStmt:
			if len(held) > 0 && isChanType(p.Info, st.X) {
				report(st.Pos(), "ranges over a channel while %s is held", held.heldName())
			} else {
				flagHazards(p, st.X, held, report)
			}
			analyzeBlock(p, st.Body.List, held.clone(), report)
		case *ast.SwitchStmt:
			flagHazards(p, st.Init, held, report)
			flagHazards(p, st.Tag, held, report)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					analyzeBlock(p, cc.Body, held.clone(), report)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					analyzeBlock(p, cc.Body, held.clone(), report)
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 {
				report(st.Pos(), "selects on channels while %s is held", held.heldName())
				continue
			}
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					analyzeBlock(p, cc.Body, held.clone(), report)
				}
			}
		case *ast.BlockStmt:
			// A naked block is straight-line code: same state.
			analyzeBlock(p, st.List, held, report)
		case *ast.LabeledStmt:
			analyzeBlock(p, []ast.Stmt{st.Stmt}, held, report)
		default:
			flagHazards(p, stmt, held, report)
		}
	}
}

// flagHazards inspects one statement or expression (not descending
// into function literals) for channel operations and I/O calls while
// any lock is held.
func flagHazards(p *Package, node ast.Node, held lockState, report Reporter) {
	if node == nil || len(held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, analyzed unlocked
		case *ast.SendStmt:
			report(v.Pos(), "sends on a channel while %s is held", held.heldName())
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(v.Pos(), "receives from a channel while %s is held", held.heldName())
			}
		case *ast.CallExpr:
			if path, name, ok := pkgFuncCall(p.Info, v); ok && ioPkgs[path] && !purePkgFns[path+"."+name] {
				report(v.Pos(), "calls %s.%s (I/O) while %s is held", pkgBase(path), name, held.heldName())
			} else if path, recv, name, ok := methodCallPkg(p.Info, v); ok && ioPkgs[path] {
				report(v.Pos(), "calls (%s.%s).%s (I/O) while %s is held", pkgBase(path), recv, name, held.heldName())
			}
		}
		return true
	})
}

// lockOp classifies a call as a sync.Mutex/RWMutex (or sync.Locker)
// lock transition on a receiver expression, returning the receiver's
// printed form as the tracking key.
func lockOp(p *Package, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, isMethod := p.Info.Selections[sel]
	if !isMethod {
		return "", "", false
	}
	fn, isFunc := selection.Obj().(*types.Func)
	if !isFunc || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// pkgBase returns the last element of an import path for messages.
func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
