package lint

// The context check: the repository's cancellation discipline, stated
// in ARCHITECTURE.md, is that cancellation flows down from the caller
// — every blocking API takes a context.Context as its first parameter
// and library code never manufactures its own root context. Two rules
// enforce that shape:
//
//   - a declared function with a context.Context parameter anywhere
//     but first is a finding (the context came from somewhere; putting
//     it first keeps call chains uniform and makes a dropped context
//     visible in review);
//   - a call to context.Background() or context.TODO() outside a main
//     package is a finding (a library that roots its own context
//     detaches itself from the caller's cancellation; main packages
//     own the process lifetime and are exempt).
//
// Function literals are not checked for parameter order: their
// signatures are dictated by the framework slots they fill.

import (
	"go/ast"
	"go/types"
)

// Context is the context-discipline check.
var Context = &Check{
	Name: "context",
	Desc: "context.Context parameters come first; library code never calls context.Background()/TODO()",
	Run:  runContext,
}

// runContext applies both context rules to one package.
func runContext(s *Suite, p *Package, report Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			idx := 0
			for _, field := range fd.Type.Params.List {
				n := len(field.Names)
				if n == 0 {
					n = 1 // unnamed parameter
				}
				if isContextType(p.Info.TypeOf(field.Type)) && idx > 0 {
					report(field.Pos(), "context.Context is parameter %d of %s; blocking APIs take ctx first", idx, fd.Name.Name)
				}
				idx += n
			}
		}
		if p.Name == "main" {
			continue // the process root owns its own context
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgFuncCall(p.Info, call); ok && path == "context" && (name == "Background" || name == "TODO") {
				report(call.Pos(), "manufactures context.%s; library code must derive from a caller-supplied context", name)
			}
			return true
		})
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
