// Package lint is the static gate over the repository's determinism
// contracts: a go/ast + go/types analyzer suite (standard library only)
// that parses and type-checks every package once, runs the registered
// checks, and reports findings as "file:line: [check] message". Where
// the test suite enforces the ARCHITECTURE.md invariants dynamically —
// on the paths a seed happens to exercise — the analyzers enforce them
// at analysis time, on every build, over all code including code no
// test reaches: a time.Now() in a pure kernel or a %v float in a store
// encoder is a finding before it is ever a flaky bit-mismatch.
//
// The suite ships five checks (see Checks):
//
//   - purity: pure-kernel packages and sweep point-functions must not
//     read the wall clock, the global math/rand source, or the
//     environment, and must not iterate a map into ordered output.
//   - floatenc: persistence paths format floats only through the
//     blessed lossless strconv 'g'/-1/64 form, never fmt verbs.
//   - context: context.Context parameters come first, and library
//     code never manufactures context.Background()/TODO().
//   - mutexio: no channel operation or direct I/O call while a
//     sync.Mutex/RWMutex is provably held in the same function body.
//   - doclint: exported identifiers are documented and internal
//     packages carry package comments (the old doclint_test.go gate).
//
// A finding can be suppressed in place with a directive comment on the
// offending line or the line directly above it:
//
//	//lint:allow <check> <reason>
//
// The reason is mandatory: an allow without one is itself a finding,
// as is an allow naming an unknown check — so a suppression always
// documents why the exception is safe.
//
// The suite runs two ways: `go run ./cmd/llama-lint ./...` (exit 1 on
// findings, -json for machine-readable output) and the root
// lint_test.go, which makes plain `go test ./...` a lint gate too.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the check that produced it,
// and a human-readable message. Findings render as
// "file:line: [check] message" with the file path relative to the
// module root.
type Finding struct {
	// File is the module-root-relative, slash-separated path of the
	// offending file; Line its 1-based line.
	File string
	Line int
	// Check names the check that produced the finding (or "allow" for a
	// misused suppression directive).
	Check string
	// Message states the violation.
	Message string
}

// String renders the finding in the canonical file:line: [check] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// Package is one parsed and type-checked package the checks run over.
// Only non-test files are loaded: the _test.go files are the dynamic
// half of the contract and are free to break purity on purpose.
type Package struct {
	// Name is the package name; Rel the module-root-relative directory
	// ("." for the root package), slash-separated.
	Name, Rel string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// TypesPkg and Info carry the go/types results for Files.
	TypesPkg *types.Package
	// Info is the type-checker's expression/object tables.
	Info *types.Info
}

// Config scopes the checks to the packages whose contracts they
// guard. All patterns are module-root-relative directory paths; a
// trailing "/..." matches the whole subtree, and entries ending in
// ".go" (where accepted) scope a single file.
type Config struct {
	// PurePkgs are the pure-kernel packages: everything in them must be
	// a deterministic function of its arguments.
	PurePkgs []string
	// SweepPkgs hold Sweep declarations whose Point/Finish function
	// bodies must be pure even though the surrounding package is not.
	SweepPkgs []string
	// SweepType is the struct type name whose Point/Finish fields are
	// sweep kernels (default "Sweep").
	SweepType string
	// PersistScopes are the persistence paths (package dirs or single
	// .go files) where floatenc applies.
	PersistScopes []string
	// DocPkgs need a package doc comment plus documented exports;
	// DocRootPkgs need documented exports only.
	DocPkgs []string
	// DocRootPkgs lists root-style packages for doclint (exported docs
	// required, package comment not).
	DocRootPkgs []string
	// ClockPkgs are the blessed deterministic time sources: calls into
	// them are never impure (default internal/simclock).
	ClockPkgs []string
}

// DefaultConfig returns the repository's real scoping: the pure
// physics kernels, the sweep package, the persistence paths, and the
// doclint coverage the old doclint_test.go enforced.
func DefaultConfig() Config {
	return Config{
		PurePkgs: []string{
			"internal/metasurface",
			"internal/twoport",
			"internal/jones",
			"internal/mat2",
			"internal/channel",
			"internal/antenna",
			"internal/signal",
		},
		SweepPkgs: []string{"internal/experiments"},
		SweepType: "Sweep",
		PersistScopes: []string{
			"internal/store",
			"internal/fleet",
			"internal/experiments/persist.go",
			"internal/experiments/tables.go",
			"internal/metasurface/table.go",
			"internal/metasurface/grid_io.go",
		},
		DocPkgs:     []string{"internal/..."},
		DocRootPkgs: []string{"."},
		ClockPkgs:   []string{"internal/simclock"},
	}
}

// relToSlash returns path relative to root in slash form (the path
// unchanged when it does not sit under root).
func relToSlash(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}

// matchRel reports whether the module-relative dir rel matches
// pattern: exact, or subtree when the pattern ends in "/...".
func matchRel(rel, pattern string) bool {
	if p, ok := strings.CutSuffix(pattern, "/..."); ok {
		return rel == p || strings.HasPrefix(rel, p+"/")
	}
	return rel == pattern
}

// matchAny reports whether rel matches any of the patterns.
func matchAny(rel string, patterns []string) bool {
	for _, p := range patterns {
		if matchRel(rel, p) {
			return true
		}
	}
	return false
}

// Suite is a loaded set of packages ready to be checked: one shared
// FileSet and type-checker pass, reused by every check.
type Suite struct {
	// Root is the absolute module root findings are reported relative
	// to.
	Root string
	// Fset is the shared position table for every loaded file.
	Fset *token.FileSet
	// Packages are the loaded packages, sorted by Rel.
	Packages []*Package
	// Config scopes the checks.
	Config Config
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// GoDirs returns every directory under root holding non-test Go files,
// skipping testdata, hidden and underscore directories — the package
// set a "dir/..." pattern denotes.
func GoDirs(root string) ([]string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadTree loads every package under dir (skipping testdata, hidden
// and underscore directories), ready for Run. dir may be anywhere
// inside its module; findings stay relative to the module root.
func LoadTree(dir string, cfg Config) (*Suite, error) {
	dirs, err := GoDirs(dir)
	if err != nil {
		return nil, err
	}
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	return LoadDirs(root, dirs, cfg)
}

// LoadDirs parses and type-checks the non-test Go files of each
// directory (which must live under root, the module root). Standard
// library and module-internal imports are resolved from source, so the
// loader needs no compiled export data.
func LoadDirs(root string, dirs []string, cfg Config) (*Suite, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	s := &Suite{Root: root, Fset: fset, Config: cfg}
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		pkg, err := loadDir(fset, imp, mod, dir, rel)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			s.Packages = append(s.Packages, pkg)
		}
	}
	sort.Slice(s.Packages, func(i, j int) bool { return s.Packages[i].Rel < s.Packages[j].Rel })
	return s, nil
}

// loadDir parses and type-checks one directory's non-test files.
func loadDir(fset *token.FileSet, imp types.Importer, mod, dir, rel string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	for _, f := range files[1:] {
		if f.Name.Name != files[0].Name.Name {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, files[0].Name.Name, f.Name.Name)
		}
	}
	path := mod
	if rel != "." {
		path = mod + "/" + rel
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", path, strings.Join(typeErrs, "\n  "))
	}
	return &Package{
		Name:     files[0].Name.Name,
		Rel:      rel,
		Files:    files,
		TypesPkg: tpkg,
		Info:     info,
	}, nil
}

// Run executes the given checks (all registered checks when none are
// named) over every loaded package and returns the surviving findings
// sorted by file, line and check: suppression directives with a reason
// remove their findings, directives without one (or naming an unknown
// check) are findings themselves.
func (s *Suite) Run(checks ...*Check) []Finding {
	if len(checks) == 0 {
		checks = Checks()
	}
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c.Name] = true
	}
	var raw []Finding
	for _, p := range s.Packages {
		for _, c := range checks {
			report := func(pos token.Pos, format string, args ...any) {
				position := s.Fset.Position(pos)
				file, err := filepath.Rel(s.Root, position.Filename)
				if err != nil {
					file = position.Filename
				}
				raw = append(raw, Finding{
					File:    filepath.ToSlash(file),
					Line:    position.Line,
					Check:   c.Name,
					Message: fmt.Sprintf(format, args...),
				})
			}
			c.Run(s, p, report)
		}
	}
	allows, findings := s.directives(known)
	for _, f := range raw {
		if allowed(allows, f) {
			continue
		}
		findings = append(findings, f)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return findings
}

// allow is one parsed lint:allow directive.
type allow struct {
	file   string
	line   int
	check  string
	reason string
}

// directives collects every lint:allow comment across the suite,
// returning the usable suppressions plus the findings for malformed
// ones (missing reason, unknown check).
func (s *Suite) directives(known map[string]bool) ([]allow, []Finding) {
	var allows []allow
	var bad []Finding
	for _, p := range s.Packages {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					position := s.Fset.Position(c.Pos())
					file, err := filepath.Rel(s.Root, position.Filename)
					if err != nil {
						file = position.Filename
					}
					file = filepath.ToSlash(file)
					fields := strings.Fields(text)
					switch {
					case len(fields) == 0:
						bad = append(bad, Finding{File: file, Line: position.Line, Check: "allow",
							Message: "lint:allow names no check; write //lint:allow <check> <reason>"})
					case !known[fields[0]]:
						bad = append(bad, Finding{File: file, Line: position.Line, Check: "allow",
							Message: fmt.Sprintf("lint:allow names unknown check %q", fields[0])})
					case len(fields) == 1:
						bad = append(bad, Finding{File: file, Line: position.Line, Check: "allow",
							Message: fmt.Sprintf("lint:allow %s has no reason; the reason is mandatory", fields[0])})
					default:
						allows = append(allows, allow{
							file:   file,
							line:   position.Line,
							check:  fields[0],
							reason: strings.Join(fields[1:], " "),
						})
					}
				}
			}
		}
	}
	return allows, bad
}

// allowed reports whether a directive on the finding's line or the
// line directly above suppresses it.
func allowed(allows []allow, f Finding) bool {
	for _, a := range allows {
		if a.file == f.File && a.check == f.Check && (a.line == f.Line || a.line == f.Line-1) {
			return true
		}
	}
	return false
}
