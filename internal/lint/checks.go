package lint

// The check registry and the small go/ast + go/types helpers every
// check shares: resolving a call to a package-level function, walking
// receiver types to their defining package, and classifying float
// types.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Reporter records one finding at a position; the driver binds it to
// the running check's name.
type Reporter func(pos token.Pos, format string, args ...any)

// A Check is one named analyzer: Run inspects a loaded package and
// reports findings through the bound reporter.
type Check struct {
	// Name is the identifier findings carry and lint:allow directives
	// name.
	Name string
	// Desc is the one-line summary llama-lint -list prints.
	Desc string
	// Run inspects one package.
	Run func(s *Suite, p *Package, report Reporter)
}

// Checks returns the registered analyzer suite in reporting order.
func Checks() []*Check {
	return []*Check{Purity, FloatEnc, Context, MutexIO, DocLint}
}

// pkgFuncCall resolves a call of the form pkg.Fn(...) to the imported
// package's path and the function name. It reports ok=false for method
// calls, locally defined functions, and builtins.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCallPkg resolves a method call x.M(...) to the package that
// defines M (following embedded fields) and the receiver's named type.
func methodCallPkg(info *types.Info, call *ast.CallExpr) (pkgPath, recvType, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", "", false
	}
	fn, isFunc := selection.Obj().(*types.Func)
	if !isFunc || fn.Pkg() == nil {
		return "", "", "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	tn := ""
	if named, isNamed := recv.(*types.Named); isNamed {
		tn = named.Obj().Name()
	}
	return fn.Pkg().Path(), tn, fn.Name(), true
}

// identObj resolves an identifier to its object whether the ident
// defines or uses it.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isMapType reports whether the expression's type is (or aliases) a
// map.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isChanType reports whether the expression's type is (or aliases) a
// channel.
func isChanType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// hasFloatCore reports whether t is a float or complex type, possibly
// behind pointers, slices, arrays, or map values — the types whose
// default formatting loses bits. Struct fields are not walked (the
// persistence structs carry pre-encoded strings by design).
func hasFloatCore(t types.Type) bool {
	for depth := 0; t != nil && depth < 8; depth++ {
		switch u := t.Underlying().(type) {
		case *types.Basic:
			switch u.Kind() {
			case types.Float32, types.Float64, types.Complex64, types.Complex128,
				types.UntypedFloat, types.UntypedComplex:
				return true
			}
			return false
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}
