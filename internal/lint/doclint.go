package lint

// The doclint check: the documentation gate formerly implemented by
// the root doclint_test.go, migrated into the analyzer framework. The
// public API (Config.DocRootPkgs, normally the root package) must
// document every exported identifier, and every package matching
// Config.DocPkgs (normally internal/...) must additionally carry a
// package-level doc comment. Declarations are judged the way godoc
// renders them: a doc comment on a grouped const/var/type declaration
// covers its specs, a trailing comment counts, and methods on
// unexported types are not API surface.

import (
	"go/ast"
	"strings"
)

// DocLint is the exported-identifier documentation gate.
var DocLint = &Check{
	Name: "doclint",
	Desc: "exported identifiers are documented; internal packages carry package doc comments",
	Run:  runDocLint,
}

// runDocLint applies the documentation rules to packages in the
// configured doc scopes.
func runDocLint(s *Suite, p *Package, report Reporter) {
	full := matchAny(p.Rel, s.Config.DocPkgs)
	rootStyle := matchAny(p.Rel, s.Config.DocRootPkgs)
	if !full && !rootStyle {
		return
	}
	if full {
		documented := false
		for _, f := range p.Files {
			if f.Doc != nil && strings.Contains(f.Doc.Text(), "Package "+p.Name) {
				documented = true
			}
		}
		if !documented {
			report(p.Files[0].Name.Pos(), "package %s has no package doc comment", p.Name)
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue // method on an unexported type: not API surface
				}
				if d.Doc == nil {
					report(d.Name.Pos(), "exported %s %s has no doc comment", declKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				lintGenDecl(d, report)
			}
		}
	}
}

// lintGenDecl checks an exported const/var/type declaration: the
// group's doc covers all specs; otherwise each exported spec needs its
// own doc or trailing comment.
func lintGenDecl(d *ast.GenDecl, report Reporter) {
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), "exported value %s has no doc comment", n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// declKind labels a FuncDecl for diagnostics.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
