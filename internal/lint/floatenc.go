package lint

// The floatenc check: persistence paths (Config.PersistScopes — the
// store, the fleet wire types, and the table/persist encoders) must
// format floats only through the blessed lossless form
// strconv.FormatFloat(v, 'g', -1, 64) (or AppendFloat with the same
// configuration). Anything else — an fmt verb, a different precision,
// a JSON number — either rounds (losing the bit-exactness resume and
// fleet transparency depend on) or rejects NaN/±Inf outright.
//
// Three constructions are flagged inside a persistence scope:
//
//   - strconv.FormatFloat / strconv.AppendFloat with any argument
//     configuration other than the literal 'g', -1, 64;
//   - any fmt formatting call with a float- or complex-typed argument
//     (fmt's default and verb formatting are both lossy);
//   - encoding/json Marshal/Encode of a float-cored value (JSON
//     numbers reject NaN/±Inf and round-trip through float parsing).
//
// Struct fields are not walked: the persisted record types carry
// pre-encoded strings by design, and a new float field smuggled into
// one belongs to a schema review, not a formatter.

import (
	"go/ast"
	"go/token"
)

// fmtFormatters are the fmt functions whose arguments get formatted.
var fmtFormatters = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

// FloatEnc is the float-encoding check over persistence paths.
var FloatEnc = &Check{
	Name: "floatenc",
	Desc: "persistence paths format floats only as strconv 'g'/-1/64 (lossless), never through fmt or JSON numbers",
	Run:  runFloatEnc,
}

// runFloatEnc walks the files inside the configured persistence
// scopes.
func runFloatEnc(s *Suite, p *Package, report Reporter) {
	pkgScoped := matchAny(p.Rel, s.Config.PersistScopes)
	for _, f := range p.Files {
		if !pkgScoped && !fileScoped(s, p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkEncodingCall(p, call, report)
			return true
		})
	}
}

// fileScoped reports whether one file is named in PersistScopes (an
// entry ending in .go).
func fileScoped(s *Suite, p *Package, f *ast.File) bool {
	pos := s.Fset.Position(f.Pos())
	rel := relToSlash(s.Root, pos.Filename)
	for _, scope := range s.Config.PersistScopes {
		if rel == scope {
			return true
		}
	}
	return false
}

// checkEncodingCall flags the lossy formatting constructions.
func checkEncodingCall(p *Package, call *ast.CallExpr, report Reporter) {
	if path, name, ok := pkgFuncCall(p.Info, call); ok {
		switch {
		case path == "strconv" && (name == "FormatFloat" || name == "AppendFloat"):
			base := 1 // FormatFloat(v, fmt, prec, bitSize)
			if name == "AppendFloat" {
				base = 2 // AppendFloat(dst, v, fmt, prec, bitSize)
			}
			if len(call.Args) != base+3 || !isCharLit(call.Args[base], "'g'") ||
				!isNegOneLit(call.Args[base+1]) || !isIntLit(call.Args[base+2], "64") {
				report(call.Pos(), "strconv.%s with a non-canonical configuration; persistence paths must use ('g', -1, 64) so every float64 round-trips bit-exactly", name)
			}
			return
		case path == "fmt" && fmtFormatters[name]:
			for _, arg := range call.Args {
				if hasFloatCore(p.Info.TypeOf(arg)) {
					report(arg.Pos(), "formats a float through fmt.%s; persistence paths must encode floats with the blessed strconv 'g'/-1/64 helpers", name)
				}
			}
			return
		case path == "encoding/json" && (name == "Marshal" || name == "MarshalIndent"):
			for _, arg := range call.Args {
				if hasFloatCore(p.Info.TypeOf(arg)) {
					report(arg.Pos(), "marshals a float as a JSON number (json.%s); JSON numbers reject NaN/±Inf — encode floats as strconv 'g'/-1/64 strings", name)
				}
			}
			return
		}
	}
	if pkgPath, recv, name, ok := methodCallPkg(p.Info, call); ok {
		if pkgPath == "encoding/json" && recv == "Encoder" && name == "Encode" {
			for _, arg := range call.Args {
				if hasFloatCore(p.Info.TypeOf(arg)) {
					report(arg.Pos(), "encodes a float as a JSON number (Encoder.Encode); JSON numbers reject NaN/±Inf — encode floats as strconv 'g'/-1/64 strings")
				}
			}
		}
	}
}

// isCharLit reports whether e is the given character literal.
func isCharLit(e ast.Expr, want string) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.CHAR && lit.Value == want
}

// isIntLit reports whether e is the given integer literal.
func isIntLit(e ast.Expr, want string) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == want
}

// isNegOneLit reports whether e is the literal -1.
func isNegOneLit(e ast.Expr) bool {
	u, ok := e.(*ast.UnaryExpr)
	return ok && u.Op == token.SUB && isIntLit(u.X, "1")
}
