package antenna

import (
	"math"
	"strings"
	"testing"

	"github.com/llama-surface/llama/internal/jones"
	"github.com/llama-surface/llama/internal/units"
)

func TestStandardModelsValidate(t *testing.T) {
	for _, m := range []Model{
		DirectionalPatch, OmniWiFi, HalfWaveDipole, ESP8266PCB, WearableBLE, CircularPatch,
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{Name: "gain", GainDBi: 99},
		{Name: "beam", GainDBi: 10, Pattern: Directional, BeamwidthDeg: 0},
		{Name: "xpd", GainDBi: 5, XPDdB: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s should fail validation", m.Name)
		}
	}
}

func TestOmniGainIsotropic(t *testing.T) {
	want := units.DBToLinear(6)
	for _, th := range []float64{0, 0.5, math.Pi / 2, math.Pi} {
		if got := OmniWiFi.Gain(th); math.Abs(got-want) > 1e-12 {
			t.Errorf("omni gain at %v = %v, want %v", th, got, want)
		}
	}
}

func TestDirectionalPattern(t *testing.T) {
	// Boresight = full gain.
	peak := DirectionalPatch.Gain(0)
	if math.Abs(units.LinearToDB(peak)-10) > 1e-9 {
		t.Errorf("boresight gain = %v dB, want 10", units.LinearToDB(peak))
	}
	// −3 dB at half beamwidth.
	half := units.Radians(DirectionalPatch.BeamwidthDeg) / 2
	at3 := DirectionalPatch.Gain(half)
	if math.Abs(units.LinearToDB(at3)-(10-3)) > 0.01 {
		t.Errorf("gain at half beamwidth = %v dB, want 7", units.LinearToDB(at3))
	}
	// Monotone decay into the side-lobe floor, never below peak−25 dB.
	floor := DirectionalPatch.Gain(math.Pi)
	if math.Abs(units.LinearToDB(floor)-(10-25)) > 0.01 {
		t.Errorf("back lobe = %v dB, want -15", units.LinearToDB(floor))
	}
	if !(DirectionalPatch.Gain(0.2) > DirectionalPatch.Gain(0.5)) {
		t.Error("pattern should decay off boresight")
	}
}

func TestPolarizationStateNormalized(t *testing.T) {
	for _, m := range []Model{DirectionalPatch, ESP8266PCB, CircularPatch} {
		for _, psi := range []float64{0, 0.7, math.Pi / 2} {
			v := m.PolarizationState(psi)
			if math.Abs(v.Norm()-1) > 1e-9 {
				t.Errorf("%s @%v: state norm %v", m.Name, psi, v.Norm())
			}
		}
	}
}

func TestXPDBoundsMismatch(t *testing.T) {
	// A fully mismatched (90°) pair of identical antennas leaks at
	// roughly −2·XPD... −XPD+6 dB depending on leak phases; the key
	// property is a finite floor far below the matched case.
	loss := DirectionalPatch.MismatchLossDB(0, DirectionalPatch, math.Pi/2)
	if loss > -14 {
		t.Errorf("orthogonal mismatch = %v dB, want ≤ -14", loss)
	}
	if math.IsInf(loss, -1) {
		t.Error("XPD should keep mismatch finite")
	}
	matched := DirectionalPatch.MismatchLossDB(0, DirectionalPatch, 0)
	if matched < -0.5 {
		t.Errorf("matched loss = %v dB, want ≈0", matched)
	}
	// The paper's Fig. 2 gap: ≥10 dB between matched and mismatched.
	if matched-loss < 10 {
		t.Errorf("match/mismatch gap = %v dB, want ≥ 10", matched-loss)
	}
}

func TestCheapAntennasLeakMore(t *testing.T) {
	cheap := ESP8266PCB.MismatchLossDB(0, ESP8266PCB, math.Pi/2)
	good := DirectionalPatch.MismatchLossDB(0, DirectionalPatch, math.Pi/2)
	if !(cheap > good) {
		t.Errorf("cheap antenna should have higher mismatch floor: %v vs %v", cheap, good)
	}
}

func TestCircularVsLinearIs3dB(t *testing.T) {
	// §2: circular↔linear costs a flat 3 dB at any orientation.
	for _, psi := range []float64{0, 0.5, 1.2, math.Pi / 2} {
		got := CircularPatch.MismatchLossDB(0, DirectionalPatch, psi)
		if math.Abs(got+3.01) > 0.35 {
			t.Errorf("circular→linear at %v = %v dB, want ≈-3", psi, got)
		}
	}
}

func TestMalusCurveWithLeakage(t *testing.T) {
	// Sweeping relative orientation 0→90° reproduces Fig. 12(a)'s
	// monotone power decay.
	prev := 0.1
	first := true
	for deg := 0.0; deg <= 90; deg += 15 {
		plf := jones.PLF(
			DirectionalPatch.PolarizationState(0),
			DirectionalPatch.PolarizationState(units.Radians(deg)),
		)
		if !first && plf >= prev {
			t.Errorf("PLF not decreasing at %v°: %v after %v", deg, plf, prev)
		}
		prev = plf
		first = false
	}
}

func TestStringers(t *testing.T) {
	if !strings.Contains(DirectionalPatch.String(), "directional") {
		t.Error("model String should include pattern")
	}
	if Omnidirectional.String() != "omnidirectional" {
		t.Error("pattern String")
	}
}
