// Package antenna models the endpoint antennas of a LLAMA deployment.
//
// The paper's core premise is that low-cost IoT devices carry one cheap,
// linearly polarized antenna, so a relative rotation between endpoints
// costs 10–15 dB (Figs. 1–2). The model captures the three properties the
// evaluation depends on: boresight gain, directional pattern (the Alfa
// 10 dBi patch vs the 6 dBi omni of §5.1.2), and cross-polarization
// discrimination (XPD) — the leakage that keeps a fully mismatched link
// finite instead of perfectly nulled.
package antenna

import (
	"fmt"
	"math"

	"github.com/llama-surface/llama/internal/jones"
	"github.com/llama-surface/llama/internal/units"
)

// Pattern describes the azimuthal directivity class of an antenna.
type Pattern int

const (
	// Omnidirectional antennas have no azimuthal selectivity.
	Omnidirectional Pattern = iota
	// Directional antennas concentrate gain in a Gaussian main lobe.
	Directional
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	if p == Directional {
		return "directional"
	}
	return "omnidirectional"
}

// Model describes an antenna type.
type Model struct {
	// Name identifies the antenna in reports.
	Name string
	// GainDBi is the boresight gain.
	GainDBi float64
	// Pattern is the directivity class.
	Pattern Pattern
	// BeamwidthDeg is the −3 dB full beamwidth of the main lobe
	// (Directional only).
	BeamwidthDeg float64
	// XPDdB is the cross-polarization discrimination: how many dB below
	// the co-polarized response the orthogonal leakage sits. Cheap IoT
	// antennas have poor (low) XPD; lab-grade antennas are cleaner.
	XPDdB float64
	// LeakPhaseRad is the phase of the cross-polarized leakage term,
	// a fixed property of the element geometry.
	LeakPhaseRad float64
	// Circular marks circularly polarized antennas (e.g. GPS patches);
	// those trade a flat 3 dB for orientation independence (§2).
	Circular bool
}

// Standard endpoint antennas used across the paper's experiments.
var (
	// DirectionalPatch is the Alfa APA-M25 style 10 dBi panel [6] used
	// in the controlled USRP experiments.
	DirectionalPatch = Model{
		Name: "10 dBi directional patch", GainDBi: 10, Pattern: Directional,
		BeamwidthDeg: 60, XPDdB: 22, LeakPhaseRad: 0.4,
	}
	// OmniWiFi is the Highfine 6 dBi indoor omni [1].
	OmniWiFi = Model{
		Name: "6 dBi omni", GainDBi: 6, Pattern: Omnidirectional,
		XPDdB: 20, LeakPhaseRad: 1.1,
	}
	// HalfWaveDipole is a generic AP antenna.
	HalfWaveDipole = Model{
		Name: "half-wave dipole", GainDBi: 2.15, Pattern: Omnidirectional,
		XPDdB: 20, LeakPhaseRad: 0.8,
	}
	// ESP8266PCB is the cheap meandered PCB trace on an ESP8266 Arduino
	// board [11]: low gain, poor polarization purity.
	ESP8266PCB = Model{
		Name: "ESP8266 PCB trace", GainDBi: 0, Pattern: Omnidirectional,
		XPDdB: 16, LeakPhaseRad: 2.0,
	}
	// WearableBLE is the MetaMotionR-style wearable chip antenna [23].
	WearableBLE = Model{
		Name: "BLE wearable chip", GainDBi: -2, Pattern: Omnidirectional,
		XPDdB: 14, LeakPhaseRad: 2.6,
	}
	// CircularPatch is a circularly polarized reference antenna (the
	// mitigation higher-end devices use, §2).
	CircularPatch = Model{
		Name: "circular patch", GainDBi: 5, Pattern: Directional,
		BeamwidthDeg: 75, XPDdB: 25, Circular: true,
	}
)

// Validate reports an error for unphysical antenna parameters.
func (m Model) Validate() error {
	switch {
	case m.GainDBi < -20 || m.GainDBi > 30:
		return fmt.Errorf("antenna: %s: implausible gain %g dBi", m.Name, m.GainDBi)
	case m.Pattern == Directional && !(m.BeamwidthDeg > 0 && m.BeamwidthDeg <= 360):
		return fmt.Errorf("antenna: %s: directional antenna needs a beamwidth", m.Name)
	case m.XPDdB < 0:
		return fmt.Errorf("antenna: %s: negative XPD", m.Name)
	}
	return nil
}

// Gain returns the linear power gain at offBoresight radians from the main
// lobe axis. Omnidirectional antennas return the full boresight gain at
// every azimuth; directional antennas follow a Gaussian main-lobe model
// with a −25 dB side-lobe floor.
func (m Model) Gain(offBoresight float64) float64 {
	peak := units.DBToLinear(m.GainDBi)
	if m.Pattern == Omnidirectional {
		return peak
	}
	// Gaussian lobe: −3 dB at half the beamwidth.
	half := units.Radians(m.BeamwidthDeg) / 2
	x := units.NormalizeAngle(offBoresight)
	drop := 3 * (x / half) * (x / half) // dB down from peak
	if drop > 25 {
		drop = 25 // side-lobe floor
	}
	return peak * units.DBToLinear(-drop)
}

// PolarizationState returns the Jones vector the antenna radiates (or,
// by reciprocity, receives best) when its element is rotated by psi
// radians from the global X axis. Linear antennas radiate mostly along
// their element with an XPD-limited orthogonal leak; circular antennas
// radiate RHC regardless of psi.
func (m Model) PolarizationState(psi float64) jones.Vector {
	if m.Circular {
		return jones.CircularRight()
	}
	leak := units.DBToFieldRatio(-m.XPDdB)
	co := jones.LinearAt(psi)
	// The orthogonal leak is in quadrature-ish phase set by the element.
	cross := jones.LinearAt(psi + math.Pi/2)
	lv := cross.Scale(complex(leak*math.Cos(m.LeakPhaseRad), leak*math.Sin(m.LeakPhaseRad)))
	v, ok := co.Add(lv).Normalize()
	if !ok {
		return co
	}
	return v
}

// MismatchLossDB returns the polarization loss (dB ≤ 0) between this
// antenna at orientation psiTx and a receiving antenna rx at psiRx over a
// clean line-of-sight path — the quantity plotted in Fig. 2's micro
// benchmarks.
func (m Model) MismatchLossDB(psiTx float64, rx Model, psiRx float64) float64 {
	return jones.PLFdB(m.PolarizationState(psiTx), rx.PolarizationState(psiRx))
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("%s (%.1f dBi, %s, XPD %.0f dB)", m.Name, m.GainDBi, m.Pattern, m.XPDdB)
}
