// Package varactor models the reverse-biased varactor diodes that make the
// LLAMA metasurface tunable.
//
// The paper loads the birefringent-structure (BFS) patterns with Skyworks
// SMV1233 varactors: sweeping the reverse bias from 2 V to 15 V moves the
// junction capacitance from 2.41 pF down to 0.84 pF, detuning an LC tank in
// each unit cell and thereby shifting the transmission phase of that axis.
// The standard junction-capacitance law
//
//	C(V) = C0 / (1 + V/Vj)^M  + Cp
//
// is fitted here to the paper's published (2 V, 2.41 pF) and (15 V,
// 0.84 pF) endpoints.
package varactor

import (
	"fmt"
	"math"
)

// Model describes a varactor diode.
type Model struct {
	// Name identifies the part.
	Name string
	// C0 is the zero-bias junction capacitance in farads (excluding Cp).
	C0 float64
	// Vj is the junction potential in volts.
	Vj float64
	// M is the grading coefficient (0.5 abrupt, ~0.45–1.5 hyperabrupt).
	M float64
	// Cp is the fixed package parasitic capacitance in farads.
	Cp float64
	// Rs is the series resistance in ohms (sets tank Q and loss).
	Rs float64
	// Ls is the package series inductance in henries.
	Ls float64
	// LeakageA is the reverse leakage current in amperes; the paper
	// measures 15 nA for the whole surface, which is what lets LLAMA run
	// from a buffer capacitor.
	LeakageA float64
	// MinBias, MaxBias delimit the usable reverse bias range in volts.
	MinBias, MaxBias float64
}

// SMV1233 is the diode used by the LLAMA prototype. C0/Vj/M are fitted so
// that C(2 V) ≈ 2.41 pF and C(15 V) ≈ 0.84 pF, the range quoted in §3.2;
// Rs and Ls are datasheet-typical for the SC-79 package.
var SMV1233 = Model{
	Name:     "SMV1233",
	C0:       4.389e-12,
	Vj:       1.5,
	M:        0.8368,
	Cp:       0.25e-12,
	Rs:       1.2,
	Ls:       0.7e-9,
	LeakageA: 20e-9,
	MinBias:  0,
	MaxBias:  30,
}

// Validate reports an error for unphysical parameters.
func (m Model) Validate() error {
	switch {
	case m.C0 <= 0:
		return fmt.Errorf("varactor: %s: non-positive C0", m.Name)
	case m.Vj <= 0:
		return fmt.Errorf("varactor: %s: non-positive Vj", m.Name)
	case m.M <= 0:
		return fmt.Errorf("varactor: %s: non-positive grading coefficient", m.Name)
	case m.Cp < 0:
		return fmt.Errorf("varactor: %s: negative parasitic capacitance", m.Name)
	case m.Rs < 0:
		return fmt.Errorf("varactor: %s: negative series resistance", m.Name)
	case m.MinBias < 0 || m.MaxBias <= m.MinBias:
		return fmt.Errorf("varactor: %s: invalid bias range [%g, %g]", m.Name, m.MinBias, m.MaxBias)
	}
	return nil
}

// Capacitance returns the total capacitance in farads at reverse bias v
// volts. Bias is clamped to the usable range, mirroring how the physical
// diode saturates rather than failing outside its spec window.
func (m Model) Capacitance(v float64) float64 {
	if v < m.MinBias {
		v = m.MinBias
	}
	if v > m.MaxBias {
		v = m.MaxBias
	}
	return m.C0/math.Pow(1+v/m.Vj, m.M) + m.Cp
}

// BiasFor inverts Capacitance: it returns the reverse bias that produces
// total capacitance c farads, or an error when c lies outside the
// achievable range.
func (m Model) BiasFor(c float64) (float64, error) {
	cMin := m.Capacitance(m.MaxBias)
	cMax := m.Capacitance(m.MinBias)
	if c < cMin || c > cMax {
		return 0, fmt.Errorf("varactor: %s: capacitance %.3g F outside [%.3g, %.3g]",
			m.Name, c, cMin, cMax)
	}
	cj := c - m.Cp
	if cj <= 0 {
		return m.MaxBias, nil
	}
	// Invert C = C0·(1+V/Vj)^−M.
	v := m.Vj * (math.Pow(m.C0/cj, 1/m.M) - 1)
	if v < m.MinBias {
		v = m.MinBias
	}
	if v > m.MaxBias {
		v = m.MaxBias
	}
	return v, nil
}

// TuningRatio returns Cmax/Cmin over the usable bias range.
func (m Model) TuningRatio() float64 {
	return m.Capacitance(m.MinBias) / m.Capacitance(m.MaxBias)
}

// QualityFactor returns the diode Q = 1/(ω·Rs·C) at frequency f and bias
// v. Higher Q means lower insertion loss of the loaded cell.
func (m Model) QualityFactor(f, v float64) float64 {
	if f <= 0 {
		panic("varactor: non-positive frequency")
	}
	if m.Rs == 0 {
		return math.Inf(1)
	}
	w := 2 * math.Pi * f
	return 1 / (w * m.Rs * m.Capacitance(v))
}

// SelfResonance returns the package self-resonant frequency 1/(2π√(Ls·C))
// at bias v; above it the diode looks inductive and tuning inverts.
func (m Model) SelfResonance(v float64) float64 {
	if m.Ls <= 0 {
		return math.Inf(1)
	}
	return 1 / (2 * math.Pi * math.Sqrt(m.Ls*m.Capacitance(v)))
}

// Impedance returns the series Rs + jωLs + 1/(jωC) impedance of the diode
// at frequency f and bias v.
func (m Model) Impedance(f, v float64) complex128 {
	if f <= 0 {
		panic("varactor: non-positive frequency")
	}
	w := 2 * math.Pi * f
	c := m.Capacitance(v)
	return complex(m.Rs, w*m.Ls-1/(w*c))
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("%s: C(%gV)=%.2f pF … C(%gV)=%.2f pF, Rs=%.1f Ω",
		m.Name, m.MinBias, m.Capacitance(m.MinBias)*1e12,
		m.MaxBias, m.Capacitance(m.MaxBias)*1e12, m.Rs)
}

// Bank models the paper's per-axis biasing network: many varactors wired
// in parallel across a bias rail. All diodes see the same bias voltage;
// total leakage scales with count.
type Bank struct {
	// Diode is the per-element model.
	Diode Model
	// Count is the number of varactors on the rail (720 total in the
	// prototype; 360 per axis).
	Count int
}

// TotalLeakage returns the bank's DC leakage in amperes at any bias.
func (b Bank) TotalLeakage() float64 { return float64(b.Count) * b.Diode.LeakageA }

// HoldTime returns how long a buffer capacitor of cap farads can hold the
// rail within dv volts of the target while supplying the bank's leakage:
// t = C·ΔV/I. This quantifies the paper's point that the surface "can work
// even with one buffer capacitor" at 15 nA scale leakage.
func (b Bank) HoldTime(capF, dv float64) float64 {
	if capF <= 0 || dv <= 0 {
		panic("varactor: hold time needs positive capacitance and droop")
	}
	i := b.TotalLeakage()
	if i <= 0 {
		return math.Inf(1)
	}
	return capF * dv / i
}
