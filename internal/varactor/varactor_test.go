package varactor

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSMV1233Valid(t *testing.T) {
	if err := SMV1233.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{Name: "c0", C0: 0, Vj: 1, M: 0.5, MaxBias: 30},
		{Name: "vj", C0: 1e-12, Vj: 0, M: 0.5, MaxBias: 30},
		{Name: "m", C0: 1e-12, Vj: 1, M: 0, MaxBias: 30},
		{Name: "cp", C0: 1e-12, Vj: 1, M: 0.5, Cp: -1e-12, MaxBias: 30},
		{Name: "rs", C0: 1e-12, Vj: 1, M: 0.5, Rs: -1, MaxBias: 30},
		{Name: "bias", C0: 1e-12, Vj: 1, M: 0.5, MinBias: 10, MaxBias: 5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %s should fail validation", m.Name)
		}
	}
}

func TestPaperCapacitanceEndpoints(t *testing.T) {
	// §3.2: "Lumped capacitances ranging from 0.84 pF to 2.41 pF …
	// reverse bias voltages from 2 V to 15 V would realize these values."
	c2 := SMV1233.Capacitance(2)
	c15 := SMV1233.Capacitance(15)
	if math.Abs(c2-2.41e-12) > 0.1e-12 {
		t.Errorf("C(2V) = %.3f pF, want ≈2.41", c2*1e12)
	}
	if math.Abs(c15-0.84e-12) > 0.08e-12 {
		t.Errorf("C(15V) = %.3f pF, want ≈0.84", c15*1e12)
	}
}

func TestCapacitanceMonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for v := 0.0; v <= 30; v += 0.25 {
		c := SMV1233.Capacitance(v)
		if c >= prev {
			t.Fatalf("C(V) not strictly decreasing at %v V: %v >= %v", v, c, prev)
		}
		prev = c
	}
}

func TestCapacitanceClampsOutsideRange(t *testing.T) {
	if SMV1233.Capacitance(-5) != SMV1233.Capacitance(0) {
		t.Error("bias below range should clamp to MinBias")
	}
	if SMV1233.Capacitance(99) != SMV1233.Capacitance(30) {
		t.Error("bias above range should clamp to MaxBias")
	}
}

func TestBiasForInvertsCapacitance(t *testing.T) {
	for v := 0.5; v <= 29.5; v += 0.5 {
		c := SMV1233.Capacitance(v)
		got, err := SMV1233.BiasFor(c)
		if err != nil {
			t.Fatalf("BiasFor(C(%v)) error: %v", v, err)
		}
		if math.Abs(got-v) > 1e-6 {
			t.Fatalf("BiasFor(C(%v V)) = %v V", v, got)
		}
	}
}

func TestBiasForRejectsOutOfRange(t *testing.T) {
	if _, err := SMV1233.BiasFor(100e-12); err == nil {
		t.Error("too-large capacitance should error")
	}
	if _, err := SMV1233.BiasFor(0.01e-12); err == nil {
		t.Error("too-small capacitance should error")
	}
}

func TestBiasForRoundTripProperty(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Abs(math.Mod(raw, 30))
		c := SMV1233.Capacitance(v)
		got, err := SMV1233.BiasFor(c)
		if err != nil {
			return false
		}
		return math.Abs(got-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTuningRatio(t *testing.T) {
	// Hyperabrupt varactors give ~3–6× tuning over the full range.
	r := SMV1233.TuningRatio()
	if r < 2.5 || r > 8 {
		t.Errorf("tuning ratio = %v, want 2.5–8", r)
	}
}

func TestQualityFactor(t *testing.T) {
	// Higher bias → lower C → higher Q.
	qLow := SMV1233.QualityFactor(2.44e9, 2)
	qHigh := SMV1233.QualityFactor(2.44e9, 15)
	if !(qHigh > qLow) {
		t.Errorf("Q should rise with bias: %v vs %v", qLow, qHigh)
	}
	if qLow < 5 || qHigh > 500 {
		t.Errorf("Q out of plausible band: %v … %v", qLow, qHigh)
	}
	// Lossless diode: infinite Q.
	lossless := SMV1233
	lossless.Rs = 0
	if !math.IsInf(lossless.QualityFactor(2.44e9, 5), 1) {
		t.Error("Rs=0 should give infinite Q")
	}
}

func TestQualityFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero frequency should panic")
		}
	}()
	SMV1233.QualityFactor(0, 5)
}

func TestSelfResonanceAboveBand(t *testing.T) {
	// The diode must be used below package self-resonance at 2.4 GHz,
	// at least at the high-bias (low C) end.
	fsr := SMV1233.SelfResonance(15)
	if fsr < 2.5e9 {
		t.Errorf("self-resonance at 15 V = %v GHz — unusable in band", fsr/1e9)
	}
	noLs := SMV1233
	noLs.Ls = 0
	if !math.IsInf(noLs.SelfResonance(5), 1) {
		t.Error("Ls=0 should give infinite self-resonance")
	}
}

func TestImpedanceCapacitiveInBand(t *testing.T) {
	z := SMV1233.Impedance(2.44e9, 5)
	if real(z) != SMV1233.Rs {
		t.Errorf("real part = %v, want Rs", real(z))
	}
	if imag(z) >= 0 {
		t.Errorf("diode at 2.44 GHz should be net capacitive, got %v", z)
	}
}

func TestImpedancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive frequency should panic")
		}
	}()
	SMV1233.Impedance(-1, 5)
}

func TestBankLeakageAndHoldTime(t *testing.T) {
	// The paper: surface leakage is ~15 nA, so a buffer capacitor can
	// hold the bias for a long time. With 720 diodes at 20 nA the bank
	// draws 14.4 µA (pessimistic per-diode datasheet figure); a 1 mF
	// buffer allowing 1 V droop holds ~69 s. The paper's measured
	// whole-surface leakage (15 nA) corresponds to HoldTime of days —
	// both orders of magnitude demonstrate "no big battery needed".
	b := Bank{Diode: SMV1233, Count: 720}
	i := b.TotalLeakage()
	if math.Abs(i-14.4e-6) > 1e-9 {
		t.Errorf("bank leakage = %v, want 14.4 µA", i)
	}
	ht := b.HoldTime(1e-3, 1)
	if ht < 60 || ht > 80 {
		t.Errorf("hold time = %v s, want ≈69 s", ht)
	}
	// Zero-leakage bank holds forever.
	zb := Bank{Diode: Model{Name: "ideal", C0: 1e-12, Vj: 1, M: 0.5, MaxBias: 30}, Count: 10}
	if !math.IsInf(zb.HoldTime(1e-6, 0.1), 1) {
		t.Error("zero leakage should hold indefinitely")
	}
}

func TestHoldTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive droop should panic")
		}
	}()
	Bank{Diode: SMV1233, Count: 1}.HoldTime(1e-6, 0)
}

func TestStringer(t *testing.T) {
	s := SMV1233.String()
	if !strings.Contains(s, "SMV1233") {
		t.Errorf("String %q should contain part name", s)
	}
}
