package mat2

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// randMat produces a bounded random matrix for property tests.
func randMat(r *rand.Rand) Mat {
	c := func() complex128 {
		return complex(r.Float64()*4-2, r.Float64()*4-2)
	}
	return Mat{A: c(), B: c(), C: c(), D: c()}
}

func randVec(r *rand.Rand) Vec {
	c := func() complex128 {
		return complex(r.Float64()*4-2, r.Float64()*4-2)
	}
	return Vec{X: c(), Y: c()}
}

func TestIdentity(t *testing.T) {
	i := Identity()
	m := Mat{A: 1 + 2i, B: 3, C: -1i, D: 2}
	if !i.Mul(m).ApproxEqual(m, 1e-15) {
		t.Error("I·m != m")
	}
	if !m.Mul(i).ApproxEqual(m, 1e-15) {
		t.Error("m·I != m")
	}
	v := Vec{X: 2 + 1i, Y: -3}
	if !i.MulVec(v).ApproxEqual(v, 1e-15) {
		t.Error("I·v != v")
	}
}

func TestRotationComposition(t *testing.T) {
	// R(a)·R(b) == R(a+b)
	for _, pair := range [][2]float64{{0.3, 0.4}, {-1.2, 2.0}, {math.Pi, math.Pi / 2}} {
		a, b := pair[0], pair[1]
		got := Rotation(a).Mul(Rotation(b))
		want := Rotation(a + b)
		if !got.ApproxEqual(want, 1e-12) {
			t.Errorf("R(%v)R(%v) != R(%v)", a, b, a+b)
		}
	}
}

func TestRotationInverseIsTranspose(t *testing.T) {
	r := Rotation(0.7)
	inv, ok := r.Inverse()
	if !ok {
		t.Fatal("rotation should be invertible")
	}
	if !inv.ApproxEqual(r.Transpose(), 1e-12) {
		t.Error("R⁻¹ != Rᵀ for a real rotation")
	}
	if !r.IsUnitary(1e-12) {
		t.Error("rotation should be unitary")
	}
}

func TestMulAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b, c := randMat(r), randMat(r), randMat(r)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		if !left.ApproxEqual(right, 1e-9) {
			t.Fatalf("associativity failed at iter %d", i)
		}
	}
}

func TestMulVecDistributes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		m := randMat(r)
		v, w := randVec(r), randVec(r)
		left := m.MulVec(v.Add(w))
		right := m.MulVec(v).Add(m.MulVec(w))
		if !left.ApproxEqual(right, 1e-9) {
			t.Fatalf("distributivity failed at iter %d", i)
		}
	}
}

func TestDetMultiplicative(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a, b := randMat(r), randMat(r)
		got := a.Mul(b).Det()
		want := a.Det() * b.Det()
		if cmplx.Abs(got-want) > 1e-8*(1+cmplx.Abs(want)) {
			t.Fatalf("det(AB) != det(A)det(B) at iter %d: %v vs %v", i, got, want)
		}
	}
}

func TestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		m := randMat(r)
		inv, ok := m.Inverse()
		if !ok {
			continue // singular draw, fine
		}
		if !m.Mul(inv).ApproxEqual(Identity(), 1e-7) {
			t.Fatalf("m·m⁻¹ != I at iter %d", i)
		}
		if !inv.Mul(m).ApproxEqual(Identity(), 1e-7) {
			t.Fatalf("m⁻¹·m != I at iter %d", i)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	if _, ok := Zero().Inverse(); ok {
		t.Error("zero matrix should not be invertible")
	}
	// Rank-1 matrix.
	m := Mat{A: 1, B: 2, C: 2, D: 4}
	if _, ok := m.Inverse(); ok {
		t.Error("rank-1 matrix should not be invertible")
	}
}

func TestAdjointProperties(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a, b := randMat(r), randMat(r)
		// (AB)† == B†A†
		left := a.Mul(b).Adjoint()
		right := b.Adjoint().Mul(a.Adjoint())
		if !left.ApproxEqual(right, 1e-9) {
			t.Fatalf("(AB)† != B†A† at iter %d", i)
		}
		// (A†)† == A
		if !a.Adjoint().Adjoint().ApproxEqual(a, 1e-12) {
			t.Fatalf("(A†)† != A at iter %d", i)
		}
	}
}

func TestHermitianInnerProduct(t *testing.T) {
	v := Vec{X: 1i, Y: 2}
	// ⟨v,v⟩ must be real and equal ‖v‖².
	d := v.Dot(v)
	if imag(d) != 0 {
		t.Errorf("⟨v,v⟩ has imaginary part %v", imag(d))
	}
	if real(d) != 5 {
		t.Errorf("⟨v,v⟩ = %v, want 5", real(d))
	}
	if v.NormSq() != 5 {
		t.Errorf("NormSq = %v, want 5", v.NormSq())
	}
}

func TestNormalize(t *testing.T) {
	v := Vec{X: 3, Y: 4i}
	n, ok := v.Normalize()
	if !ok {
		t.Fatal("normalize of nonzero vector failed")
	}
	if math.Abs(n.Norm()-1) > 1e-12 {
		t.Errorf("normalized norm = %v", n.Norm())
	}
	if _, ok := (Vec{}).Normalize(); ok {
		t.Error("normalize of zero vector should report false")
	}
}

func TestUnitaryPreservesNorm(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		u := Rotation(r.Float64() * 2 * math.Pi)
		// Also exercise a diagonal phase matrix: unitary but complex.
		p := Diag(cmplx.Exp(complex(0, r.Float64()*2*math.Pi)), cmplx.Exp(complex(0, r.Float64()*2*math.Pi)))
		m := u.Mul(p)
		if !m.IsUnitary(1e-10) {
			t.Fatalf("R·diag(phase) should be unitary")
		}
		v := randVec(r)
		if math.Abs(m.MulVec(v).Norm()-v.Norm()) > 1e-9 {
			t.Fatalf("unitary map changed the norm at iter %d", i)
		}
	}
}

func TestTraceAndScale(t *testing.T) {
	m := Mat{A: 1, B: 2, C: 3, D: 4}
	if m.Trace() != 5 {
		t.Errorf("trace = %v, want 5", m.Trace())
	}
	s := m.Scale(2i)
	if s.A != 2i || s.D != 8i {
		t.Errorf("scale wrong: %v", s)
	}
	if got := m.Add(m).Sub(m); !got.ApproxEqual(m, 1e-15) {
		t.Errorf("m+m-m != m: %v", got)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := Mat{A: 3, B: 4}
	if math.Abs(m.FrobeniusNorm()-5) > 1e-12 {
		t.Errorf("Frobenius = %v, want 5", m.FrobeniusNorm())
	}
	if Identity().FrobeniusNorm() != math.Sqrt2 {
		t.Errorf("‖I‖F = %v, want √2", Identity().FrobeniusNorm())
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(ar, ai, br, bi, cr, ci, dr, di float64) bool {
		clampf := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 10)
		}
		m := Mat{
			A: complex(clampf(ar), clampf(ai)),
			B: complex(clampf(br), clampf(bi)),
			C: complex(clampf(cr), clampf(ci)),
			D: complex(clampf(dr), clampf(di)),
		}
		inv, ok := m.Inverse()
		if !ok {
			return true
		}
		return m.Mul(inv).ApproxEqual(Identity(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if s := Identity().String(); s == "" {
		t.Error("empty matrix string")
	}
	if s := (Vec{X: 1, Y: 2}).String(); s == "" {
		t.Error("empty vector string")
	}
}
