// Package mat2 implements complex 2-vectors and 2×2 complex matrices.
//
// These are the algebraic foundation for Jones calculus (package jones) and
// for two-port microwave network analysis (package twoport): polarization
// states are complex 2-vectors, while wave plates, birefringent structures,
// ABCD matrices and scattering matrices are all complex 2×2 matrices.
package mat2

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Vec is a complex column 2-vector [X, Y].
type Vec struct {
	X, Y complex128
}

// Mat is a complex 2×2 matrix in row-major order:
//
//	| A B |
//	| C D |
type Mat struct {
	A, B complex128
	C, D complex128
}

// Identity returns the 2×2 identity matrix.
func Identity() Mat { return Mat{A: 1, D: 1} }

// Zero returns the zero matrix.
func Zero() Mat { return Mat{} }

// Rotation returns the real rotation matrix R(θ) for a counterclockwise
// rotation by θ radians:
//
//	| cosθ −sinθ |
//	| sinθ  cosθ |
//
// This is Eq. (4) of the paper.
func Rotation(theta float64) Mat {
	c := complex(math.Cos(theta), 0)
	s := complex(math.Sin(theta), 0)
	return Mat{A: c, B: -s, C: s, D: c}
}

// Diag returns the diagonal matrix diag(a, d).
func Diag(a, d complex128) Mat { return Mat{A: a, D: d} }

// Scale returns m scaled by the complex factor k.
func (m Mat) Scale(k complex128) Mat {
	return Mat{A: k * m.A, B: k * m.B, C: k * m.C, D: k * m.D}
}

// Add returns m + n.
func (m Mat) Add(n Mat) Mat {
	return Mat{A: m.A + n.A, B: m.B + n.B, C: m.C + n.C, D: m.D + n.D}
}

// Sub returns m − n.
func (m Mat) Sub(n Mat) Mat {
	return Mat{A: m.A - n.A, B: m.B - n.B, C: m.C - n.C, D: m.D - n.D}
}

// Mul returns the matrix product m·n.
func (m Mat) Mul(n Mat) Mat {
	return Mat{
		A: m.A*n.A + m.B*n.C,
		B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C,
		D: m.C*n.B + m.D*n.D,
	}
}

// MulVec returns the matrix-vector product m·v.
func (m Mat) MulVec(v Vec) Vec {
	return Vec{
		X: m.A*v.X + m.B*v.Y,
		Y: m.C*v.X + m.D*v.Y,
	}
}

// Transpose returns the transpose of m.
func (m Mat) Transpose() Mat { return Mat{A: m.A, B: m.C, C: m.B, D: m.D} }

// Conj returns the element-wise complex conjugate of m.
func (m Mat) Conj() Mat {
	return Mat{A: cmplx.Conj(m.A), B: cmplx.Conj(m.B), C: cmplx.Conj(m.C), D: cmplx.Conj(m.D)}
}

// Adjoint returns the conjugate transpose (Hermitian adjoint) m†.
func (m Mat) Adjoint() Mat { return m.Conj().Transpose() }

// Det returns the determinant of m.
func (m Mat) Det() complex128 { return m.A*m.D - m.B*m.C }

// Trace returns the trace of m.
func (m Mat) Trace() complex128 { return m.A + m.D }

// Inverse returns m⁻¹ and true, or the zero matrix and false when m is
// singular (|det| below tol, using 1e-12 relative to the largest element).
func (m Mat) Inverse() (Mat, bool) {
	det := m.Det()
	scale := m.MaxAbs()
	if scale == 0 || cmplx.Abs(det) < 1e-12*scale*scale {
		return Mat{}, false
	}
	inv := 1 / det
	return Mat{A: m.D * inv, B: -m.B * inv, C: -m.C * inv, D: m.A * inv}, true
}

// MaxAbs returns the largest element magnitude, a cheap matrix norm used
// for tolerance scaling.
func (m Mat) MaxAbs() float64 {
	max := cmplx.Abs(m.A)
	for _, e := range []complex128{m.B, m.C, m.D} {
		if a := cmplx.Abs(e); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm sqrt(Σ|mᵢⱼ|²).
func (m Mat) FrobeniusNorm() float64 {
	s := 0.0
	for _, e := range []complex128{m.A, m.B, m.C, m.D} {
		a := cmplx.Abs(e)
		s += a * a
	}
	return math.Sqrt(s)
}

// IsUnitary reports whether m†·m ≈ I within tol (element-wise absolute).
// Lossless polarization elements (ideal wave plates, rotators) are unitary;
// lossy ones (FR4 structures) are strictly sub-unitary.
func (m Mat) IsUnitary(tol float64) bool {
	p := m.Adjoint().Mul(m)
	return p.ApproxEqual(Identity(), tol)
}

// ApproxEqual reports whether every element of m and n is within tol.
func (m Mat) ApproxEqual(n Mat, tol float64) bool {
	return cmplx.Abs(m.A-n.A) <= tol &&
		cmplx.Abs(m.B-n.B) <= tol &&
		cmplx.Abs(m.C-n.C) <= tol &&
		cmplx.Abs(m.D-n.D) <= tol
}

// String renders the matrix for debugging.
func (m Mat) String() string {
	return fmt.Sprintf("[%v %v; %v %v]", m.A, m.B, m.C, m.D)
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{X: v.X + w.X, Y: v.Y + w.Y} }

// Sub returns v − w.
func (v Vec) Sub(w Vec) Vec { return Vec{X: v.X - w.X, Y: v.Y - w.Y} }

// Scale returns v scaled by the complex factor k.
func (v Vec) Scale(k complex128) Vec { return Vec{X: k * v.X, Y: k * v.Y} }

// Dot returns the Hermitian inner product ⟨v, w⟩ = conj(v)·w.
func (v Vec) Dot(w Vec) complex128 {
	return cmplx.Conj(v.X)*w.X + cmplx.Conj(v.Y)*w.Y
}

// Norm returns the Euclidean norm ‖v‖.
func (v Vec) Norm() float64 { return math.Sqrt(real(v.Dot(v))) }

// NormSq returns ‖v‖², which for a Jones vector is the wave power in
// arbitrary units.
func (v Vec) NormSq() float64 { return real(v.Dot(v)) }

// Normalize returns v/‖v‖ and true, or the zero vector and false when v is
// (numerically) zero.
func (v Vec) Normalize() (Vec, bool) {
	n := v.Norm()
	if n < 1e-300 {
		return Vec{}, false
	}
	return v.Scale(complex(1/n, 0)), true
}

// ApproxEqual reports whether both components are within tol.
func (v Vec) ApproxEqual(w Vec, tol float64) bool {
	return cmplx.Abs(v.X-w.X) <= tol && cmplx.Abs(v.Y-w.Y) <= tol
}

// String renders the vector for debugging.
func (v Vec) String() string { return fmt.Sprintf("[%v; %v]", v.X, v.Y) }
