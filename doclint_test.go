package llama

// TestDocLint is the documentation gate CI's docs job runs: the public
// API (this root package) must document every exported identifier, and
// every internal package must carry a package-level doc comment. It
// parses source with go/ast rather than grepping so methods, grouped
// declarations and struct fields are judged the way godoc renders them.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseDir parses the non-test Go files of one directory.
func parseDir(t *testing.T, dir string) map[string]*ast.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	return pkgs
}

// TestDocLintRootPackage fails on any undocumented exported identifier in
// the root llama package: functions, methods, types, and const/var specs
// (a doc comment on the enclosing grouped declaration covers its specs).
func TestDocLintRootPackage(t *testing.T) {
	pkgs := parseDir(t, ".")
	pkg, ok := pkgs["llama"]
	if !ok {
		t.Fatalf("no llama package found (have %v)", pkgs)
	}
	for name, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue // method on an unexported type: not API surface
				}
				if d.Doc == nil {
					t.Errorf("%s: exported %s %s has no doc comment", name, declKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				lintGenDecl(t, name, d)
			}
		}
	}
}

// TestDocLintInternalPackages fails on any internal package missing a
// package-level doc comment.
func TestDocLintInternalPackages(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found")
	}
	for _, dir := range dirs {
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			continue
		}
		for pkgName, pkg := range parseDir(t, dir) {
			documented := false
			for _, file := range pkg.Files {
				if file.Doc != nil && strings.Contains(file.Doc.Text(), "Package "+pkgName) {
					documented = true
				}
			}
			if !documented {
				t.Errorf("internal package %s (%s) has no package doc comment", pkgName, dir)
			}
		}
	}
}

// TestDocLintInternalExported fails on any undocumented exported
// identifier in any internal package. Internal exports are the contracts
// between layers (metasurface.CacheStats, twoport.CascadeN,
// experiments.Timing, …), and godoc-visible documentation on them is what
// keeps ARCHITECTURE.md's layer story navigable — so the gate covers them
// exactly like the root API.
func TestDocLintInternalExported(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			continue
		}
		for _, pkg := range parseDir(t, dir) {
			for name, file := range pkg.Files {
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if !d.Name.IsExported() {
							continue
						}
						if d.Recv != nil && !exportedReceiver(d.Recv) {
							continue
						}
						if d.Doc == nil {
							t.Errorf("%s: exported %s %s has no doc comment", name, declKind(d), d.Name.Name)
						}
					case *ast.GenDecl:
						lintGenDecl(t, name, d)
					}
				}
			}
		}
	}
}

// lintGenDecl checks an exported const/var/type declaration: the group's
// doc covers all specs; otherwise each exported spec needs its own doc or
// trailing comment.
func lintGenDecl(t *testing.T, file string, d *ast.GenDecl) {
	t.Helper()
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				t.Errorf("%s: exported type %s has no doc comment", file, s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					t.Errorf("%s: exported value %s has no doc comment", file, n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// declKind labels a FuncDecl for error messages.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
