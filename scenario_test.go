package llama

// Cross-package integration scenarios: each test tells one of the paper's
// deployment stories end to end, exercising several subsystems together
// (surface physics + channel + controller + mobility + PHY rates). These
// complement the per-package unit tests with whole-system invariants.

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/radio"
	"github.com/llama-surface/llama/internal/sensing"
	"github.com/llama-surface/llama/internal/simclock"
	"github.com/llama-surface/llama/internal/units"
)

// TestScenarioWalkingUser: a user walks with a wearable (sinusoidal arm
// swing) under a tracked surface. The tracker must deliver better median
// power than a one-shot optimization that never re-tunes.
func TestScenarioWalkingUser(t *testing.T) {
	build := func() (*Loop, channel.ArmSwing) {
		loop, err := NewLoop(LoopConfig{Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		swing := channel.ArmSwing{MeanRad: math.Pi / 2, AmplitudeRad: units.Radians(50), PeriodS: 1}
		return loop, swing
	}

	// One-shot: optimize at t=0, never again.
	oneShot, swing := build()
	if _, err := oneShot.Optimize(context.Background()); err != nil {
		t.Fatal(err)
	}
	var oneShotPower []float64
	for step := 0; step < 40; step++ {
		tm := time.Duration(step) * 50 * time.Millisecond
		oneShot.Scene().Tx.Orientation = swing.OrientationAt(tm)
		oneShotPower = append(oneShotPower, oneShot.ReceivedDBm())
	}

	// Tracked: the tracker steps at the same cadence.
	tracked, swing2 := build()
	tr, err := tracked.NewTracker(DefaultTrackerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	var trackedPower []float64
	for step := 0; step < 40; step++ {
		tm := time.Duration(step) * 50 * time.Millisecond
		tracked.Scene().Tx.Orientation = swing2.OrientationAt(tm)
		if _, _, err := tr.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
		trackedPower = append(trackedPower, tracked.ReceivedDBm())
	}

	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(trackedPower) < mean(oneShotPower)-0.5 {
		t.Errorf("tracking (%.1f dBm mean) should not trail one-shot (%.1f dBm mean)",
			mean(trackedPower), mean(oneShotPower))
	}
	if tr.Stats().Holds == 0 {
		t.Error("tracker never held — escalating on every step is wasteful")
	}
}

// TestScenarioManufacturedPanelCloseToIdeal: a panel drawn with realistic
// tolerances, driven by the standard controller, must land within a few
// dB of the ideal surface's optimized link.
func TestScenarioManufacturedPanelCloseToIdeal(t *testing.T) {
	ideal, err := NewLoop(LoopConfig{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ideal.Optimize(context.Background()); err != nil {
		t.Fatal(err)
	}

	lat, err := ManufacturePanel(OptimizedFR4(DefaultCarrierHz), DefaultLatticeSpec(), 33)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the lattice with the same Algorithm 1 over a direct scene.
	sc := MismatchedLink(nil, 0.48)
	act := control.ActuatorFunc(func(vx, vy float64) error {
		lat.SetBias(vx, vy)
		return nil
	})
	sen := control.SensorFunc(func() (float64, error) {
		m := lat.JonesTransmissive(DefaultCarrierHz)
		e := m.MulVec(sc.Tx.State())
		// Project onto the receiver state over the same geometry.
		d := sc.Rx.State().Dot(e)
		p := real(d)*real(d) + imag(d)*imag(d)
		return units.LinearToDB(p), nil
	})
	res, err := control.CoarseToFine(context.Background(), control.DefaultSweepConfig(), act, sen)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the polarization-transfer quality (not absolute link
	// budget — the lattice sensor measures the projection only).
	idealSurf := ideal.Surface()
	vx, vy := idealSurf.Bias()
	idealProj := func() float64 {
		m := idealSurf.JonesTransmissive(DefaultCarrierHz)
		d := sc.Rx.State().Dot(m.MulVec(sc.Tx.State()))
		return units.LinearToDB(real(d)*real(d) + imag(d)*imag(d))
	}()
	_ = vx
	_ = vy
	if idealProj-res.BestPowerDBm > 3 {
		t.Errorf("manufactured panel optimized to %.1f dB vs ideal %.1f dB", res.BestPowerDBm, idealProj)
	}
}

// TestScenarioSensingNeedsTheSurface: the respiration pipeline over the
// real reflective physics flips from undetectable to detectable when the
// optimized surface is deployed, across several noise seeds.
func TestScenarioSensingNeedsTheSurface(t *testing.T) {
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	surf.SetBias(8, 8)
	detections := 0
	misses := 0
	for seed := int64(1); seed <= 5; seed++ {
		run := func(s *Surface) sensing.Analysis {
			sc := channel.DefaultScene(s, 0.70)
			sc.Mode = metasurface.Reflective
			sc.Geom = Geometry{TxRx: 0.70, TxSurface: 2.0, SurfaceRx: 2.0}
			sc.TxPowerW = 5e-3
			sc.Tx.Orientation = 0
			sc.MeasurementSaturation = 0
			mon, err := sensing.NewMonitor(sc, sensing.DefaultBreather(), 10, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			rec := mon.Record(60, simclock.RNG(seed, "scenario-sensing"))
			a, err := sensing.Analyze(rec, mon.SampleRateHz)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		if run(surf).Detected {
			detections++
		}
		if !run(nil).Detected {
			misses++
		}
	}
	if detections < 4 {
		t.Errorf("with surface: detected in only %d/5 seeds", detections)
	}
	if misses < 4 {
		t.Errorf("without surface: correctly missed in only %d/5 seeds", misses)
	}
}

// TestScenarioThroughputAcrossTheLadder: as distance grows, the
// surface-corrected link walks down the MCS ladder gracefully while the
// mismatched baseline falls off a cliff — the rate-adaptation view of the
// Friis range-extension claim.
func TestScenarioThroughputAcrossTheLadder(t *testing.T) {
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	prevWith := math.Inf(1)
	cliffDistBase, cliffDistWith := -1.0, -1.0
	for _, d := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		sc := MismatchedLink(surf, d)
		sc.TxPowerW = 1e-3
		act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
		sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
		if _, err := control.CoarseToFine(context.Background(), control.DefaultSweepConfig(), act, sen); err != nil {
			t.Fatal(err)
		}
		base := MismatchedLink(nil, d)
		base.TxPowerW = 1e-3
		tpWith := radio.AdaptedThroughput(radio.WiFi11g, sc.SNR(), 1500)
		tpBase := radio.AdaptedThroughput(radio.WiFi11g, base.SNR(), 1500)
		if tpWith > prevWith+1 {
			t.Errorf("with-surface throughput rose with distance at %v m", d)
		}
		prevWith = tpWith
		if tpBase < 1e3 && cliffDistBase < 0 {
			cliffDistBase = d
		}
		if tpWith < 1e3 && cliffDistWith < 0 {
			cliffDistWith = d
		}
	}
	if cliffDistBase < 0 {
		t.Fatal("baseline never fell off the cliff — extend the sweep")
	}
	if cliffDistWith > 0 && cliffDistWith < cliffDistBase*2 {
		t.Errorf("surface range extension too small: cliff at %v m vs baseline %v m",
			cliffDistWith, cliffDistBase)
	}
}

// TestScenarioDeterministicReplay: the same seed must reproduce the same
// closed-loop outcome bit for bit, across fresh systems.
func TestScenarioDeterministicReplay(t *testing.T) {
	run := func() (float64, float64, float64) {
		loop, err := NewLoop(LoopConfig{Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		res, err := loop.Optimize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.BestVx, res.BestVy, res.BestPowerDBm
	}
	ax, ay, ap := run()
	bx, by, bp := run()
	if ax != bx || ay != by || ap != bp {
		t.Errorf("replay diverged: (%v,%v,%v) vs (%v,%v,%v)", ax, ay, ap, bx, by, bp)
	}
}
