package llama

// The benchmark harness of deliverable (d): one testing.B target per
// table and figure of the paper's evaluation, plus the DESIGN.md
// ablations. Each benchmark regenerates the artefact end to end (workload
// generation, sweep, physics) so `go test -bench=.` both times the
// pipeline and re-derives every reported number. Run cmd/llama-bench to
// see the tables themselves.

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/units"
)

// benchExperiment runs a registry entry b.N times, seeding each run
// differently so caching cannot hide work.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(context.Background(), id, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig02a(b *testing.B) { benchExperiment(b, "fig2a") }
func BenchmarkFig02b(b *testing.B) { benchExperiment(b, "fig2b") }
func BenchmarkFig08(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig09(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "fig23") }

// Ablations and extensions (DESIGN.md §4).
func BenchmarkAblSubstrate(b *testing.B)  { benchExperiment(b, "abl-substrate") }
func BenchmarkAblLayers(b *testing.B)     { benchExperiment(b, "abl-layers") }
func BenchmarkAblSweep(b *testing.B)      { benchExperiment(b, "abl-sweep") }
func BenchmarkAblSync(b *testing.B)       { benchExperiment(b, "abl-sync") }
func BenchmarkAblBaseline(b *testing.B)   { benchExperiment(b, "abl-baseline") }
func BenchmarkAblYield(b *testing.B)      { benchExperiment(b, "abl-yield") }
func BenchmarkExt900MHz(b *testing.B)     { benchExperiment(b, "ext-900mhz") }
func BenchmarkExtMultilink(b *testing.B)  { benchExperiment(b, "ext-multilink") }
func BenchmarkExtThroughput(b *testing.B) { benchExperiment(b, "ext-throughput") }
func BenchmarkExtSchedule(b *testing.B)   { benchExperiment(b, "ext-schedule") }

// Whole-suite benchmarks: the serial reference path vs the concurrent
// Engine at several pool widths, so the fan-out speedup (and any
// coordination overhead on small machines) is measurable.

func BenchmarkRunAllSerial(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAll(ctx, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

func benchRunAllParallel(b *testing.B, workers int) {
	b.Helper()
	ctx := context.Background()
	eng := &experiments.Engine{Concurrency: workers}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := eng.RunAll(ctx, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkRunAllParallel2(b *testing.B)        { benchRunAllParallel(b, 2) }
func BenchmarkRunAllParallel8(b *testing.B)        { benchRunAllParallel(b, 8) }
func BenchmarkRunAllParallelMaxProcs(b *testing.B) { benchRunAllParallel(b, 0) }

// Row-sharded whole-suite benchmarks: same pool widths with every sweep
// split into per-point jobs. Comparing RunAllSharded* against
// RunAllParallel* isolates what interleaving row jobs into the queue buys
// (and costs, on small machines).

func benchRunAllSharded(b *testing.B, workers int) {
	b.Helper()
	ctx := context.Background()
	eng := &experiments.Engine{Concurrency: workers, ShardRows: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := eng.RunAll(ctx, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkRunAllSharded2(b *testing.B)        { benchRunAllSharded(b, 2) }
func BenchmarkRunAllSharded8(b *testing.B)        { benchRunAllSharded(b, 8) }
func BenchmarkRunAllShardedMaxProcs(b *testing.B) { benchRunAllSharded(b, 0) }

// Single-experiment serial-vs-sharded benchmarks: the case the sharding
// exists for. A lone long sweep (fig15's seven full bias-plane scans)
// bounds wall-clock for the whole-experiment engine no matter how many
// workers it has; sharding its rows is the only way -parallel helps a
// single -run.

func benchSingleExperiment(b *testing.B, id string, workers int, shard bool) {
	b.Helper()
	ctx := context.Background()
	eng := &experiments.Engine{Concurrency: workers, IDs: []string{id}, ShardRows: shard}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.RunAll(ctx, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 1 {
			b.Fatalf("got %d results", len(res))
		}
	}
}

func BenchmarkFig15Serial(b *testing.B)   { benchSingleExperiment(b, "fig15", 1, false) }
func BenchmarkFig15Sharded4(b *testing.B) { benchSingleExperiment(b, "fig15", 4, true) }
func BenchmarkFig15Sharded8(b *testing.B) { benchSingleExperiment(b, "fig15", 8, true) }

// BenchmarkFig15SerialUncached is the A/B counterpart of
// BenchmarkFig15Serial with the response cache disabled: the ratio of
// the two is the measured cache speedup on the bias-plane scan workload
// (the same A/B the llama-bench -cache flag exposes).
func BenchmarkFig15SerialUncached(b *testing.B) {
	SetCaching(false)
	defer SetCaching(true)
	benchSingleExperiment(b, "fig15", 1, false)
}
func BenchmarkFig19Serial(b *testing.B)       { benchSingleExperiment(b, "fig19", 1, false) }
func BenchmarkFig19Sharded8(b *testing.B)     { benchSingleExperiment(b, "fig19", 8, true) }
func BenchmarkExt900MHzSerial(b *testing.B)   { benchSingleExperiment(b, "ext-900mhz", 1, false) }
func BenchmarkExt900MHzSharded8(b *testing.B) { benchSingleExperiment(b, "ext-900mhz", 8, true) }

// BenchmarkReplicate5Seeds times the multi-seed aggregation path the
// paper-style error-bar tables use.
func BenchmarkReplicate5Seeds(b *testing.B) {
	ctx := context.Background()
	eng := &experiments.Engine{Concurrency: 0, IDs: []string{"fig16", "tab1", "fig22"}}
	for i := 0; i < b.N; i++ {
		agg, err := eng.Replicate(ctx, []int64{1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
		if len(agg) != 3 {
			b.Fatalf("replicated %d experiments", len(agg))
		}
	}
}

// Micro-benchmarks of the hot paths underneath the experiments, so
// regressions in the physics kernels are visible independent of the
// workload plumbing.

func BenchmarkSurfaceJonesTransmissive(b *testing.B) {
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	surf.SetBias(8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := surf.JonesTransmissive(DefaultCarrierHz)
		if m.MaxAbs() == 0 {
			b.Fatal("degenerate Jones matrix")
		}
	}
}

func BenchmarkSurfaceJonesReflective(b *testing.B) {
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	surf.SetBias(8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := surf.JonesReflective(DefaultCarrierHz)
		if m.MaxAbs() == 0 {
			b.Fatal("degenerate Jones matrix")
		}
	}
}

func BenchmarkSceneFieldTransfer(b *testing.B) {
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	surf.SetBias(8, 8)
	sc := MismatchedLink(surf, 0.48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h := sc.FieldTransfer(); h == 0 {
			b.Fatal("null field")
		}
	}
}

// BenchmarkSurfaceJonesTransmissiveUncached isolates the raw physics
// kernel (cache bypassed): comparing against the cached benchmark above
// shows what memoization buys per evaluation.
func BenchmarkSurfaceJonesTransmissiveUncached(b *testing.B) {
	SetCaching(false)
	defer SetCaching(true)
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	surf.SetBias(8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := surf.JonesTransmissive(DefaultCarrierHz)
		if m.MaxAbs() == 0 {
			b.Fatal("degenerate Jones matrix")
		}
	}
}

// scanSteps is the per-axis resolution of the bias-plane scan A/B
// benchmarks: 21×21 = 441 operating points per iteration, the shape of
// the fig15/fig16 sweeps.
const scanSteps = 21

// benchBiasPlaneScan sweeps the full (vx, vy) bias plane at the carrier
// once per iteration. The per-point jitter makes every axis bias value a
// first touch for the exact table (axis entries are keyed by bias, so a
// plain grid would reuse each value 21×), so the exact number measures
// compute-and-memoize cost rather than a warm rerun — the honest
// baseline for the LUT, which answers every point by in-grid
// interpolation regardless of whether it was seen before.
func benchBiasPlaneScan(b *testing.B) {
	b.Helper()
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		for x := 0; x < scanSteps; x++ {
			for y := 0; y < scanSteps; y++ {
				// Unique per point for the first ~2268 iterations (CI runs
				// 100), bounded ≤1 V so the scan stays inside the LUT grid.
				p := (i*scanSteps+x)*scanSteps + y
				off := float64(p%1_000_000) * 1e-6
				surf.SetBias(float64(x)*1.4+off, float64(y)*1.4+off)
				sink += surf.JonesTransmissive(DefaultCarrierHz).MaxAbs()
			}
		}
	}
	if sink == 0 {
		b.Fatal("degenerate scan")
	}
}

// BenchmarkBiasPlaneScanExact / ...LUT / ...Uncached are the A/B/C the
// CI bench job gates on: the LUT path must be ≥2× faster than exact and
// allocation-free on in-grid lookups (the grid is built untimed).
func BenchmarkBiasPlaneScanExact(b *testing.B) { benchBiasPlaneScan(b) }

func BenchmarkBiasPlaneScanLUT(b *testing.B) {
	SetLUT(true)
	defer SetLUT(false)
	// Build the design's grid (and the shared QWP entry) outside the
	// timed region; every timed lookup is then pure interpolation.
	warm := NewSurface(OptimizedFR4(DefaultCarrierHz))
	warm.SetBias(8, 8)
	warm.JonesTransmissive(DefaultCarrierHz)
	benchBiasPlaneScan(b)
}

func BenchmarkBiasPlaneScanUncached(b *testing.B) {
	SetCaching(false)
	defer SetCaching(true)
	benchBiasPlaneScan(b)
}

// BenchmarkBiasPlaneScanParallel scans the warm 21×21 bias plane from
// many goroutines at once (run with -cpu 1,8), every goroutine owning
// its own Surface of the shared design — the contention shape of the
// sharded engine and the fleet workers. One op is one full plane scan
// resolved through the batch API against the design's shared table;
// after the untimed prewarm every lookup is a published-snapshot hit,
// so scaling between the -cpu runs measures read-path contention and
// nothing else.
func BenchmarkBiasPlaneScanParallel(b *testing.B) {
	pts := make([]BatchPoint, 0, scanSteps*scanSteps)
	for x := 0; x < scanSteps; x++ {
		for y := 0; y < scanSteps; y++ {
			pts = append(pts, BatchPoint{F: DefaultCarrierHz, VX: float64(x) * 1.4, VY: float64(y) * 1.4})
		}
	}
	// Prewarm (and publish) the whole working set untimed.
	NewSurface(OptimizedFR4(DefaultCarrierHz)).Warm(pts)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
		var dst []Mat2
		for pb.Next() {
			dst = surf.JonesBatch(Transmissive, pts, dst)
			if dst[0].MaxAbs() == 0 {
				b.Fatal("degenerate scan")
			}
		}
	})
}

func BenchmarkClosedLoopSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loop, err := NewLoop(LoopConfig{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := loop.Optimize(context.Background()); err != nil {
			b.Fatal(err)
		}
		if loop.GainDB() < 3 {
			b.Fatalf("closed loop gained only %.1f dB", loop.GainDB())
		}
	}
}

func BenchmarkCoarseToFineAlgorithm(b *testing.B) {
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	sc := MismatchedLink(surf, 0.48)
	act := control.ActuatorFunc(func(vx, vy float64) error { surf.SetBias(vx, vy); return nil })
	sen := control.SensorFunc(func() (float64, error) { return sc.ReceivedPowerDBm(), nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := control.CoarseToFine(context.Background(), control.DefaultSweepConfig(), act, sen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignCalibration(b *testing.B) {
	d := OptimizedFR4(DefaultCarrierHz)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pitch := d.CalibrateLoadPitch(units.Radians(97), 0.9, 15)
		if math.IsNaN(pitch) || pitch <= 0 {
			b.Fatal("bad calibration")
		}
	}
}

func BenchmarkRotationExtraction(b *testing.B) {
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	surf.SetBias(2, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := surf.RotationDegrees(DefaultCarrierHz); r <= 0 {
			b.Fatal("no rotation")
		}
	}
}

func BenchmarkLatticeAggregation(b *testing.B) {
	lat, err := ManufacturePanel(OptimizedFR4(DefaultCarrierHz), DefaultLatticeSpec(), 1)
	if err != nil {
		b.Fatal(err)
	}
	lat.SetBias(2, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := lat.RotationDegrees(DefaultCarrierHz); r <= 0 {
			b.Fatal("no rotation")
		}
	}
}

func BenchmarkTrackerStep(b *testing.B) {
	loop, err := NewLoop(LoopConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := loop.NewTracker(DefaultTrackerConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Step(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRateAdaptation(b *testing.B) {
	table := WiFi11gRates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tp := AdaptedThroughput(table, 100, 1500); tp <= 0 {
			b.Fatal("no throughput")
		}
	}
}

// BenchmarkNetworkedLoop times the full socket round trip: SCPI program,
// UDP telemetry, one sweep step.
func BenchmarkNetworkedLoop(b *testing.B) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	loop, err := StartNetworkedLoop(ctx, LoopConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer loop.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loop.Optimize(ctx); err != nil {
			b.Fatal(err)
		}
	}
	_ = metasurface.Transmissive
}
