module github.com/llama-surface/llama

go 1.24
