package llama

import (
	"context"
	"fmt"

	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/radio"
	"github.com/llama-surface/llama/internal/schedule"
)

// This file exposes the production-oriented extensions beyond the paper's
// one-shot evaluation: drift tracking, manufactured-panel modelling,
// PHY-rate translation and multi-link scheduling.

// Tracker maintains the optimum under drift with a three-tier escalation
// ladder (hold / local refine / full re-sweep) — the continuous-operation
// extension of Algorithm 1.
type Tracker = control.Tracker

// TrackerConfig tunes the escalation ladder.
type TrackerConfig = control.TrackerConfig

// TrackerAction identifies the tier a tracking step took.
type TrackerAction = control.Action

// Tracking tiers.
const (
	TrackHold    = control.ActionHold
	TrackRefine  = control.ActionRefine
	TrackResweep = control.ActionResweep
)

// DefaultTrackerConfig returns the standard ladder (hold within 1 dB,
// refine within 6 dB, re-sweep beyond).
func DefaultTrackerConfig() TrackerConfig { return control.DefaultTrackerConfig() }

// NewTracker attaches a tracker to a Loop's actuator and sensor.
func (l *Loop) NewTracker(cfg TrackerConfig) (*Tracker, error) {
	return control.NewTracker(cfg, l.sys.Actuator(), l.sys.Sensor())
}

// Lattice models the surface as its physical population of units with
// fabrication spread and varactor failures — the manufacturing-yield view
// of the panel.
type Lattice = metasurface.Lattice

// LatticeSpec sets the manufacturing tolerances.
type LatticeSpec = metasurface.LatticeSpec

// DefaultLatticeSpec returns cheap-assembly tolerances.
func DefaultLatticeSpec() LatticeSpec { return metasurface.DefaultLatticeSpec() }

// ManufacturePanel draws a manufactured instance of a design.
func ManufacturePanel(d Design, spec LatticeSpec, seed int64) (*Lattice, error) {
	return metasurface.NewLattice(d, spec, seed)
}

// PHYRate is one protocol operating point (modulation + coding + rate).
type PHYRate = radio.Rate

// WiFi11gRates returns the 802.11g rate table.
func WiFi11gRates() []PHYRate {
	out := make([]PHYRate, len(radio.WiFi11g))
	copy(out, radio.WiFi11g)
	return out
}

// BLERate returns the BLE 1M PHY.
func BLERate() PHYRate { return radio.BLE1M }

// AdaptedThroughput returns the goodput (bit/s) of ideal rate adaptation
// over the table at linear SNR for the given frame size.
func AdaptedThroughput(table []PHYRate, snr float64, frameBytes int) float64 {
	return radio.AdaptedThroughput(table, snr, frameBytes)
}

// ScheduledLink is one endpoint pair sharing the surface in the §7
// polarization-reuse setting.
type ScheduledLink = schedule.Link

// ScheduleAllocation is the outcome of a scheduling policy.
type ScheduleAllocation = schedule.Allocation

// CompareSchedules ranks the static / round-robin / proportional policies
// by worst-link throughput over the default bias grid.
func CompareSchedules(links []ScheduledLink) ([]ScheduleAllocation, error) {
	return schedule.Compare(links, schedule.DefaultGrid())
}

// Track runs n tracking steps after an initial sweep, returning the
// tracker for inspection — a convenience for simple monitoring loops.
func (l *Loop) Track(ctx context.Context, cfg TrackerConfig, n int) (*Tracker, error) {
	if n < 0 {
		return nil, fmt.Errorf("llama: negative step count")
	}
	tr, err := l.NewTracker(cfg)
	if err != nil {
		return nil, err
	}
	if err := tr.Start(ctx); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, _, err := tr.Step(ctx); err != nil {
			return tr, err
		}
	}
	return tr, nil
}
