package llama

// The static-contract gates CI runs at the repo root. The analysis
// itself lives in internal/lint (shared with cmd/llama-lint); these
// tests load the tree once and fail on any finding, so `go test ./...`
// and `go run ./cmd/llama-lint ./...` enforce the same contracts.

import (
	"sync"
	"testing"

	"github.com/llama-surface/llama/internal/lint"
)

// loadSuite parses and type-checks the whole module once, shared by
// every lint test in this file.
var loadSuite = sync.OnceValues(func() (*lint.Suite, error) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	dirs, err := lint.GoDirs(root)
	if err != nil {
		return nil, err
	}
	return lint.LoadDirs(root, dirs, lint.DefaultConfig())
})

// TestLint runs every registered check over the module and fails on
// any finding. A `//lint:allow <check> <reason>` directive on (or
// directly above) the offending line documents a deliberate exception.
func TestLint(t *testing.T) {
	s, err := loadSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Run() {
		t.Errorf("%s", f)
	}
}

// TestDocLint is the documentation gate CI's docs job runs: the public
// API (this root package) must document every exported identifier, and
// every internal package must carry a package-level doc comment. It is
// the doclint check from internal/lint run in isolation.
func TestDocLint(t *testing.T) {
	s, err := loadSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Run(lint.DocLint) {
		t.Errorf("%s", f)
	}
}
