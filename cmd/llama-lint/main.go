// Command llama-lint runs the internal/lint analyzer suite — the
// static gate over the repository's determinism contracts — and exits
// non-zero on any finding.
//
// Usage:
//
//	llama-lint [-json] [-list] [packages ...]
//
// Package arguments are directories relative to the current working
// directory; a trailing "/..." lints the whole subtree, and the
// default is "./...". Findings print one per line as
//
//	file:line: [check] message
//
// with paths relative to the module root, or as a JSON array with
// -json. Exit status is 0 for a clean tree, 1 when there are findings,
// and 2 for usage or load errors (a package that fails to parse or
// type-check).
//
// A finding can be suppressed in place with a mandatory-reason
// directive on the offending line or the line above:
//
//	//lint:allow <check> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/llama-surface/llama/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	list := flag.Bool("list", false, "list the registered checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: llama-lint [-json] [-list] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-10s %s\n", c.Name, c.Desc)
		}
		return
	}

	suite, err := load(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "llama-lint:", err)
		os.Exit(2)
	}
	findings := suite.Run()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "llama-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "llama-lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// load resolves the package patterns against the module containing the
// working directory and loads them into one suite.
func load(patterns []string) (*lint.Suite, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if dir, ok := strings.CutSuffix(pat, "/..."); ok {
			if dir == "" || dir == "." {
				dir = cwd
			}
			sub, err := lint.GoDirs(dirAbs(cwd, dir))
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		add(dirAbs(cwd, pat))
	}
	return lint.LoadDirs(root, dirs, lint.DefaultConfig())
}

// dirAbs resolves a possibly relative pattern against the working
// directory.
func dirAbs(cwd, dir string) string {
	if filepath.IsAbs(dir) {
		return dir
	}
	return filepath.Join(cwd, dir)
}
