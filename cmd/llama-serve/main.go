// Command llama-serve is the long-lived experiment service: an
// HTTP/JSON front over the experiment scheduler with the durable
// results store as its backend. Where llama-bench computes a run and
// exits, llama-serve accepts runs over HTTP, executes them on one
// shared worker pool, persists every completed (experiment, seed) cell
// into the store, and serves results that are byte-identical to
// llama-bench's output for the same spec — including after a restart,
// because completed runs are re-served from the store.
//
// Usage:
//
//	llama-serve -store DIR                   serve on :8080 backed by DIR
//	llama-serve -store DIR -addr :9000       choose the listen address
//	llama-serve -store DIR -workers 4        bound the shared worker pool
//	llama-serve -store DIR -drain 1m         bound the shutdown drain
//	llama-serve -store DIR -max-queued 64    refuse submissions past the bound (429)
//	llama-serve -store DIR -retention 168h   enable POST /admin/gc with a week's retention
//	llama-serve -store DIR -fleet            accept llama-worker processes (lease pull)
//	llama-serve -store DIR -fleet -lease-ttl 5s -fleet-only
//	                                         fleet does all compute; silent workers
//	                                         lose their lease after 5s
//
// Endpoints (see internal/service):
//
//	POST   /runs                      {"ids":["fig15"],"seeds":[1,2,3]}
//	GET    /runs                      list runs
//	GET    /runs/{id}                 status + progress
//	GET    /runs/{id}/events          live status/progress stream (SSE)
//	GET    /runs/{id}/result?format=csv|json|text
//	DELETE /runs/{id}                 cancel / delete
//	POST   /admin/gc                  drop unreferenced cells older than -retention
//	GET    /healthz                   liveness (503 while draining)
//	POST   /fleet/lease               (-fleet) grant a shard job to a worker
//	POST   /fleet/heartbeat           (-fleet) keep a lease alive
//	POST   /fleet/complete            (-fleet) deliver a leased job's rows
//	GET    /fleet/stats               (-fleet) lease lifecycle counters
//
// SIGINT/SIGTERM drains gracefully: in-flight runs are cancelled and
// their completed cells persist to the store, so a later identical
// submission resumes instead of recomputing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/service"
	"github.com/llama-surface/llama/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		storeDir  = flag.String("store", "", "durable results store directory (created if missing; required)")
		workers   = flag.Int("workers", 0, "worker pool width shared by all runs (0 = GOMAXPROCS)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown bound: how long to wait for in-flight runs to salvage and persist")
		maxQueued = flag.Int("max-queued", 0, "submissions allowed in flight at once; beyond it POST /runs gets 429 + Retry-After (0 = unbounded)")
		retention = flag.Duration("retention", 0, "POST /admin/gc removes cells unreferenced by any run and older than this (0 disables gc)")
		fleetOn   = flag.Bool("fleet", false, "mount /fleet/* so llama-worker processes can lease shard jobs")
		leaseTTL  = flag.Duration("lease-ttl", 10*time.Second, "fleet lease heartbeat deadline: a silent worker's jobs are reassigned after this (needs -fleet)")
		fleetOnly = flag.Bool("fleet-only", false, "start no local compute workers; the fleet does all compute (needs -fleet)")
	)
	flag.Parse()
	if *storeDir == "" {
		fatal(errors.New("-store DIR is required: the store is the service's durable result backend"))
	}
	if (*fleetOnly || flag.Lookup("lease-ttl").Value.String() != (10*time.Second).String()) && !*fleetOn {
		fatal(errors.New("-fleet-only and -lease-ttl need -fleet"))
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unknown arguments %v", flag.Args()))
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	// Warm-start the per-design response tables from the store so the
	// first run after a restart skips previously computed physics.
	if nt, ne, warns := experiments.LoadResponseTables(st); nt > 0 || len(warns) > 0 {
		for _, warn := range warns {
			log.Printf("llama-serve: %s", warn)
		}
		log.Printf("llama-serve: warm-started %d response table(s), %d entries", nt, ne)
	}
	// Grids too: a LUT-mode run served by this process then interpolates
	// from imported samples instead of rebuilding dense grids.
	if ng, ns, warns := experiments.LoadLUTGrids(st); ng > 0 || len(warns) > 0 {
		for _, warn := range warns {
			log.Printf("llama-serve: %s", warn)
		}
		log.Printf("llama-serve: warm-started %d LUT grid(s), %d samples", ng, ns)
	}
	svc, err := service.New(service.Config{
		Store: st, Workers: *workers, Logf: log.Printf,
		MaxQueued: *maxQueued, Retention: *retention,
		Fleet: *fleetOn, FleetTTL: *leaseTTL, FleetOnly: *fleetOnly,
	})
	if err != nil {
		fatal(err)
	}

	// Listen before announcing readiness so "listening on" is never a lie
	// (and so tests/scripts can poll /healthz as the readiness signal).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	log.Printf("llama-serve: listening on %s (store %s)", ln.Addr(), *storeDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain
	log.Printf("llama-serve: draining (up to %v): cancelling in-flight runs, persisting completed cells", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("llama-serve: http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	// Persist the response tables grown during this lifetime so the next
	// process (or a fleet worker sharing the store) starts warm.
	if nt, ne, warns := experiments.SaveResponseTables(st); nt > 0 || len(warns) > 0 {
		for _, warn := range warns {
			log.Printf("llama-serve: %s", warn)
		}
		log.Printf("llama-serve: persisted %d response table(s), %d entries", nt, ne)
	}
	if ng, ns, warns := experiments.SaveLUTGrids(st); ng > 0 || len(warns) > 0 {
		for _, warn := range warns {
			log.Printf("llama-serve: %s", warn)
		}
		log.Printf("llama-serve: persisted %d LUT grid(s), %d samples", ng, ns)
	}
	log.Printf("llama-serve: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llama-serve:", err)
	os.Exit(1)
}
