// Command llama-serve is the long-lived experiment service: an
// HTTP/JSON front over the experiment scheduler with the durable
// results store as its backend. Where llama-bench computes a run and
// exits, llama-serve accepts runs over HTTP, executes them on one
// shared worker pool, persists every completed (experiment, seed) cell
// into the store, and serves results that are byte-identical to
// llama-bench's output for the same spec — including after a restart,
// because completed runs are re-served from the store.
//
// Usage:
//
//	llama-serve -store DIR                   serve on :8080 backed by DIR
//	llama-serve -store DIR -addr :9000       choose the listen address
//	llama-serve -store DIR -workers 4        bound the shared worker pool
//	llama-serve -store DIR -drain 1m         bound the shutdown drain
//	llama-serve -store DIR -max-queued 64    refuse submissions past the bound (429)
//	llama-serve -store DIR -retention 168h   enable POST /admin/gc with a week's retention
//
// Endpoints (see internal/service):
//
//	POST   /runs                      {"ids":["fig15"],"seeds":[1,2,3]}
//	GET    /runs                      list runs
//	GET    /runs/{id}                 status + progress
//	GET    /runs/{id}/events          live status/progress stream (SSE)
//	GET    /runs/{id}/result?format=csv|json|text
//	DELETE /runs/{id}                 cancel / delete
//	POST   /admin/gc                  drop unreferenced cells older than -retention
//	GET    /healthz                   liveness (503 while draining)
//
// SIGINT/SIGTERM drains gracefully: in-flight runs are cancelled and
// their completed cells persist to the store, so a later identical
// submission resumes instead of recomputing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/llama-surface/llama/internal/service"
	"github.com/llama-surface/llama/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		storeDir  = flag.String("store", "", "durable results store directory (created if missing; required)")
		workers   = flag.Int("workers", 0, "worker pool width shared by all runs (0 = GOMAXPROCS)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown bound: how long to wait for in-flight runs to salvage and persist")
		maxQueued = flag.Int("max-queued", 0, "submissions allowed in flight at once; beyond it POST /runs gets 429 + Retry-After (0 = unbounded)")
		retention = flag.Duration("retention", 0, "POST /admin/gc removes cells unreferenced by any run and older than this (0 disables gc)")
	)
	flag.Parse()
	if *storeDir == "" {
		fatal(errors.New("-store DIR is required: the store is the service's durable result backend"))
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unknown arguments %v", flag.Args()))
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	svc, err := service.New(service.Config{
		Store: st, Workers: *workers, Logf: log.Printf,
		MaxQueued: *maxQueued, Retention: *retention,
	})
	if err != nil {
		fatal(err)
	}

	// Listen before announcing readiness so "listening on" is never a lie
	// (and so tests/scripts can poll /healthz as the readiness signal).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	log.Printf("llama-serve: listening on %s (store %s)", ln.Addr(), *storeDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain
	log.Printf("llama-serve: draining (up to %v): cancelling in-flight runs, persisting completed cells", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("llama-serve: http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	log.Printf("llama-serve: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llama-serve:", err)
	os.Exit(1)
}
