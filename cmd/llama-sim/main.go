// Command llama-sim runs the end-to-end networked LLAMA system on the
// loopback interface: an SCPI/TCP instrument server for the bias supply,
// the binary UDP telemetry leg from the receiver, and the Algorithm 1
// controller closing the loop — then reports the link improvement.
//
// Usage:
//
//	llama-sim                      default 48 cm mismatched bench
//	llama-sim -dist 0.36 -seed 3   other geometries
//	llama-sim -reflective          same-side deployment
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/llama-surface/llama"
	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/metasurface"
)

func main() {
	var (
		dist       = flag.Float64("dist", 0.48, "Tx–Rx distance in meters")
		seed       = flag.Int64("seed", 1, "random seed")
		reflective = flag.Bool("reflective", false, "same-side reflective deployment")
		timeout    = flag.Duration("timeout", time.Minute, "wall-clock budget")
	)
	flag.Parse()

	cfg := llama.LoopConfig{Seed: *seed}
	if *reflective {
		cfg.Mode = metasurface.Reflective
		cfg.Geom = channel.Geometry{TxRx: 0.70, TxSurface: *dist, SurfaceRx: *dist}
	} else {
		cfg.Geom = channel.Geometry{TxRx: *dist, TxSurface: *dist / 2, SurfaceRx: *dist / 2}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	loop, err := llama.StartNetworkedLoop(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	defer loop.Close()

	idn, err := loop.InstrumentID()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bias supply online: %s\n", idn)
	fmt.Printf("deployment: %v, Tx–Rx %.0f cm, mismatched polarization\n", cfg.Mode, cfg.Geom.TxRx*100)

	start := time.Now()
	res, err := loop.Optimize(ctx)
	if err != nil {
		fatal(err)
	}
	vx, vy := loop.Surface().Bias()
	fmt.Printf("sweep: %d measurements in %v wall / 1 s virtual\n", len(res.Samples), time.Since(start).Round(time.Millisecond))
	fmt.Printf("optimal bias: Vx=%.1f V, Vy=%.1f V → %.1f dBm\n", vx, vy, res.BestPowerDBm)
	fmt.Printf("link gain over no-surface baseline: %.1f dB (range ×%.1f)\n",
		loop.GainDB(), llama.RangeExtension(loop.GainDB()))
	if lost := loop.LostReports(); lost > 0 {
		fmt.Printf("telemetry: %d reports lost\n", lost)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llama-sim:", err)
	os.Exit(1)
}
