// Command llama-worker is a fleet compute process: it joins a
// llama-serve instance started with -fleet, leases shard jobs over
// HTTP pull (POST /fleet/lease), recomputes each job from its pure
// description with the local experiment registry, heartbeats the lease
// while computing, and posts the rows back (POST /fleet/complete). Add
// workers to make a run's wall-clock shrink; kill them freely — a
// worker that dies mid-job simply misses its heartbeat deadline and
// the coordinator reassigns the job, with served bytes identical
// either way (determinism invariant 9).
//
// Usage:
//
//	llama-worker -coordinator http://host:8080               join a fleet
//	llama-worker -coordinator URL -name worker-a             name it in coordinator logs
//	llama-worker -coordinator URL -store DIR                 also persist whole cells directly
//	llama-worker -coordinator URL -poll 100ms                idle lease-poll backoff
//
// With -store DIR the worker also warm-starts its per-design response
// tables from DIR/tables (and persists the grown tables on exit), and
// reports its warm-start import counts and live cache hit rate to the
// coordinator — visible per worker under GET /fleet/stats.
//
// SIGINT/SIGTERM stops the loop after the in-flight job; a harder kill
// is always safe (that is the point of leases).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/fleet"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/store"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "base URL of the llama-serve -fleet instance to join (required)")
		name        = flag.String("name", "", "worker name shown in coordinator logs (default worker-<pid>)")
		storeDir    = flag.String("store", "", "optional shared results store: whole-experiment cells are persisted directly as well as reported back")
		poll        = flag.Duration("poll", 200*time.Millisecond, "idle backoff between lease attempts when the coordinator has no work")
	)
	flag.Parse()
	if *coordinator == "" {
		fatal(errors.New("-coordinator URL is required: the llama-serve instance to lease jobs from"))
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unknown arguments %v", flag.Args()))
	}
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	var st *store.Store
	warmTables, warmEntries := 0, 0
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			fatal(err)
		}
		// Warm-start the response tables so this worker's first jobs skip
		// physics any previous process already computed.
		var warns []string
		warmTables, warmEntries, warns = experiments.LoadResponseTables(st)
		for _, warn := range warns {
			log.Printf("llama-worker: %s", warn)
		}
		log.Printf("llama-worker: warm-started %d response table(s), %d entries", warmTables, warmEntries)
		// Grids too, so leased LUT-mode jobs never rebuild dense grids.
		if ng, ns, warns := experiments.LoadLUTGrids(st); ng > 0 || len(warns) > 0 {
			for _, warn := range warns {
				log.Printf("llama-worker: %s", warn)
			}
			log.Printf("llama-worker: warm-started %d LUT grid(s), %d samples", ng, ns)
		}
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		Client: &fleet.Client{Base: *coordinator},
		Name:   *name,
		Store:  st,
		Poll:   *poll,
		Logf:   log.Printf,
		Tables: func() *fleet.WorkerTables {
			cs := metasurface.GlobalCacheStats()
			return &fleet.WorkerTables{
				WarmTables:  warmTables,
				WarmEntries: warmEntries,
				Hits:        cs.Hits,
				Misses:      cs.Misses,
				HitRate:     cs.HitRate(),
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("llama-worker: %s joining fleet at %s", *name, *coordinator)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	if st != nil {
		// Persist the tables grown during this worker's lifetime so the
		// next process sharing the store starts warm.
		nt, ne, warns := experiments.SaveResponseTables(st)
		for _, warn := range warns {
			log.Printf("llama-worker: %s", warn)
		}
		log.Printf("llama-worker: persisted %d response table(s), %d entries", nt, ne)
		if ng, ns, warns := experiments.SaveLUTGrids(st); ng > 0 || len(warns) > 0 {
			for _, warn := range warns {
				log.Printf("llama-worker: %s", warn)
			}
			log.Printf("llama-worker: persisted %d LUT grid(s), %d samples", ng, ns)
		}
	}
	log.Printf("llama-worker: %s stopped after %d jobs", *name, w.Jobs())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llama-worker:", err)
	os.Exit(1)
}
