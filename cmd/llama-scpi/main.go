// Command llama-scpi is a small utility around the simulated Tektronix
// 2230G bias supply: it can serve the instrument on a TCP port, or act as
// a one-shot client sending SCPI commands to a running instance — useful
// for poking at the control plane by hand.
//
// Usage:
//
//	llama-scpi -serve :5025                      run the instrument
//	llama-scpi -addr 127.0.0.1:5025 "*IDN?"      query it
//	llama-scpi -addr ... "APPL CH1,12.5" "VOLT?" multiple commands
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/llama-surface/llama/internal/psu"
	"github.com/llama-surface/llama/internal/scpi"
)

func main() {
	var (
		serve = flag.String("serve", "", "serve the instrument on this address")
		addr  = flag.String("addr", "", "send commands to an instrument at this address")
	)
	flag.Parse()

	switch {
	case *serve != "":
		runServer(*serve)
	case *addr != "":
		runClient(*addr, flag.Args())
	default:
		fmt.Fprintln(os.Stderr, "llama-scpi: need -serve ADDR or -addr ADDR CMD...")
		os.Exit(2)
	}
}

func runServer(addr string) {
	supply := psu.New()
	start := time.Now()
	tree := scpi.NewTree()
	scpi.Bind(tree, supply, func() time.Duration { return time.Since(start) })
	srv := scpi.NewServer(tree)
	bound, err := srv.Listen(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("2230G instrument serving on %s (commands: %s)\n",
		bound, strings.Join(tree.Commands(), ", "))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
}

func runClient(addr string, cmds []string) {
	if len(cmds) == 0 {
		fatal(fmt.Errorf("no commands given"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := scpi.Dial(ctx, addr)
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	for _, cmd := range cmds {
		if strings.Contains(cmd, "?") {
			resp, err := client.Query(cmd)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-24s → %s\n", cmd, resp)
		} else {
			if err := client.Send(cmd); err != nil {
				fatal(err)
			}
			fmt.Printf("%-24s → ok\n", cmd)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llama-scpi:", err)
	os.Exit(1)
}
