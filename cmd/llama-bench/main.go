// Command llama-bench regenerates the paper's evaluation: every table and
// figure of §5 plus the DESIGN.md ablations, as text tables on stdout.
//
// Usage:
//
//	llama-bench -list                 list experiment IDs
//	llama-bench -run fig16            run one experiment
//	llama-bench -all                  run everything (the default)
//	llama-bench -seed 7 -run fig19    change the random seed
//	llama-bench -parallel             fan experiments out across GOMAXPROCS workers
//	llama-bench -parallel -seeds 5    replicate across 5 seeds; tables carry mean±stddev
//	llama-bench -shard-rows -run fig15  split one experiment's sweep rows across the pool
//	llama-bench -batch-rows 4         group 4 sweep points per sharded job
//	llama-bench -cache=false          disable the physics response cache (A/B timing)
//	llama-bench -lut                  approximate interpolated-lookup mode (fast, NOT bit-exact)
//	llama-bench -lut -lut-grid 241    densify the LUT bias grid (lower error, more precompute)
//	llama-bench -store DIR            persist every (experiment, seed) table into DIR
//	llama-bench -store DIR -resume    reuse stored cells; only missing seeds recompute
//	llama-bench -timeout 30s          bound the whole run
//
// With -store DIR the run also warm-starts from (and re-persists) the
// per-design response tables under DIR/tables, so repeated invocations
// skip previously computed physics entirely.
//
// Tables go to stdout (text, csv or json via -format); the per-experiment
// timing summary goes to stderr so piped output stays parseable.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/metasurface"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		run      = flag.String("run", "", "run a single experiment by ID")
		all      = flag.Bool("all", false, "run every experiment")
		seed     = flag.Int64("seed", 1, "base random seed for workload generation")
		seeds    = flag.Int("seeds", 1, "replication count: run seeds seed..seed+N-1 and aggregate mean±stddev")
		parallel = flag.Bool("parallel", false, "fan experiments out across GOMAXPROCS workers (serial otherwise)")
		shard    = flag.Bool("shard-rows", false, "split each experiment's sweep rows into per-point jobs so even a single -run saturates the pool (implies -parallel; output is bit-identical)")
		batch    = flag.Int("batch-rows", 1, "group N consecutive sweep points per sharded job, amortizing queue overhead on huge axes (implies -shard-rows when > 1; output is bit-identical)")
		cache    = flag.Bool("cache", true, "memoize the metasurface response physics; disable for A/B timing of the uncached kernels (outputs are bit-identical either way)")
		lut      = flag.Bool("lut", false, "approximate mode: answer bias-network responses from a precomputed interpolation grid instead of exact evaluation — rows are NOT bit-identical to an exact run and stored cells are marked non-reusable; use for throwaway scans, never for published tables")
		lutGrid  = flag.Int("lut-grid", 0, "LUT bias-axis resolution (samples across each design's bias range); 0 = default; needs -lut")
		storeDir = flag.String("store", "", "persist each (experiment, seed) result table into this durable results store directory (created if missing)")
		resume   = flag.Bool("resume", false, "reuse valid stored cells from -store instead of recomputing them; missing, corrupt or schema-drifted records are recomputed and re-persisted (requires -store; output is bit-identical to a fresh run)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		format   = flag.String("format", "text", "output format: text, csv or json")
	)
	flag.Parse()
	metasurface.SetCaching(*cache)
	if *batch > 1 {
		*shard = true
	}
	if *resume && *storeDir == "" {
		fatal(fmt.Errorf("-resume requires -store DIR"))
	}
	if *lutGrid != 0 && !*lut {
		fatal(fmt.Errorf("-lut-grid needs -lut"))
	}

	switch *format {
	case "text", "csv", "json":
	default:
		// Catch this before computing a full run only to fail at the
		// first emit.
		fatal(fmt.Errorf("unknown format %q (want text, csv or json)", *format))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Describe(id))
		}
	default:
		if !*all && *run == "" && flag.NArg() > 0 {
			fatal(fmt.Errorf("unknown arguments %v; use -list, -run or -all", flag.Args()))
		}
		if *seeds < 1 {
			fatal(fmt.Errorf("-seeds %d: need at least one seed", *seeds))
		}
		opts := experiments.Options{Concurrency: 1, ShardRows: *shard, BatchRows: *batch, StoreDir: *storeDir, Resume: *resume, LUT: *lut, LUTGrid: *lutGrid}
		if *parallel || *shard {
			opts.Concurrency = 0 // engine default: GOMAXPROCS
		}
		if *run != "" {
			// Single-experiment runs go through the same engine so
			// -seeds/-parallel/-timeout compose with -run.
			opts.IDs = []string{*run}
		}
		for s := int64(0); s < int64(*seeds); s++ {
			opts.Seeds = append(opts.Seeds, *seed+s)
		}
		rep, runErr := experiments.Execute(ctx, opts)
		if rep == nil {
			fatal(runErr)
		}
		// Emit whatever completed even when the run failed, so a late
		// failure doesn't throw away computed tables; then report which
		// experiment broke. WriteTables is the same renderer llama-serve
		// uses, so CLI stdout and service responses carry identical bytes
		// for identical specs (determinism invariant 7).
		emitErr := rep.WriteTables(os.Stdout, *format)
		if err := rep.Render(os.Stderr); err != nil {
			fatal(err)
		}
		if runErr != nil {
			fatal(runErr)
		}
		if emitErr != nil {
			fatal(emitErr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llama-bench:", err)
	os.Exit(1)
}
