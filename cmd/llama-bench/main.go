// Command llama-bench regenerates the paper's evaluation: every table and
// figure of §5 plus the DESIGN.md ablations, as text tables on stdout.
//
// Usage:
//
//	llama-bench -list              list experiment IDs
//	llama-bench -run fig16         run one experiment
//	llama-bench -all               run everything (the default)
//	llama-bench -seed 7 -run fig19 change the random seed
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/llama-surface/llama/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		run    = flag.String("run", "", "run a single experiment by ID")
		all    = flag.Bool("all", false, "run every experiment")
		seed   = flag.Int64("seed", 1, "random seed for workload generation")
		format = flag.String("format", "text", "output format: text, csv or json")
	)
	flag.Parse()

	emit := func(res *experiments.Result) error {
		switch *format {
		case "text":
			return res.Render(os.Stdout)
		case "csv":
			return res.WriteCSV(os.Stdout)
		case "json":
			return res.WriteJSON(os.Stdout)
		default:
			return fmt.Errorf("unknown format %q (want text, csv or json)", *format)
		}
	}

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Describe(id))
		}
	case *run != "":
		res, err := experiments.Run(*run, *seed)
		if err != nil {
			fatal(err)
		}
		if err := emit(res); err != nil {
			fatal(err)
		}
	default:
		if !*all && flag.NArg() > 0 {
			fatal(fmt.Errorf("unknown arguments %v; use -list, -run or -all", flag.Args()))
		}
		results, err := experiments.RunAll(*seed)
		if err != nil {
			fatal(err)
		}
		for _, res := range results {
			if err := emit(res); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llama-bench:", err)
	os.Exit(1)
}
