package llama

import (
	"context"
	"math"
	"testing"
)

func TestLoopTracker(t *testing.T) {
	loop, err := NewLoop(LoopConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loop.Track(context.Background(), DefaultTrackerConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.Stats()
	if stats.Resweeps < 1 {
		t.Error("initial sweep not counted")
	}
	if stats.Holds != 3 {
		t.Errorf("static scene should hold every step: %+v", stats)
	}
	if loop.GainDB() < 5 {
		t.Errorf("tracked gain = %.1f dB", loop.GainDB())
	}
}

func TestLoopTrackRejectsNegativeSteps(t *testing.T) {
	loop, err := NewLoop(LoopConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Track(context.Background(), DefaultTrackerConfig(), -1); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestManufacturePanel(t *testing.T) {
	lat, err := ManufacturePanel(OptimizedFR4(DefaultCarrierHz), DefaultLatticeSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	lat.SetBias(2, 15)
	if rot := lat.RotationDegrees(DefaultCarrierHz); rot < 30 {
		t.Errorf("manufactured panel rotation = %v°", rot)
	}
	bad := OptimizedFR4(DefaultCarrierHz)
	bad.BFSLayers = 0
	if _, err := ManufacturePanel(bad, DefaultLatticeSpec(), 1); err == nil {
		t.Error("bad design accepted")
	}
}

func TestPHYRateFacade(t *testing.T) {
	rates := WiFi11gRates()
	if len(rates) != 6 {
		t.Fatalf("rate table size = %d", len(rates))
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// package table.
	rates[0].BitRate = 1
	if fresh := WiFi11gRates(); fresh[0].BitRate == 1 {
		t.Error("rate table aliased to caller")
	}
	if BLERate().Name == "" {
		t.Error("BLE rate empty")
	}
	tp := AdaptedThroughput(WiFi11gRates(), math.Pow(10, 30.0/10), 1500)
	if tp < 40e6 {
		t.Errorf("clean-channel adapted throughput = %v", tp)
	}
}

func TestCompareSchedulesFacade(t *testing.T) {
	surf := NewSurface(OptimizedFR4(DefaultCarrierHz))
	scA := MismatchedLink(surf, 0.48)
	scA.TxPowerW = 2e-5
	scB := MismatchedLink(surf, 0.60)
	scB.Rx.Orientation = 0.9
	scB.TxPowerW = 2e-5
	links := []ScheduledLink{
		{Name: "A", Throughput: func(vx, vy float64) float64 {
			surf.SetBias(vx, vy)
			return AdaptedThroughput(WiFi11gRates(), scA.SNR(), 1500)
		}},
		{Name: "B", Throughput: func(vx, vy float64) float64 {
			surf.SetBias(vx, vy)
			return AdaptedThroughput(WiFi11gRates(), scB.SNR(), 1500)
		}},
	}
	ranked, err := CompareSchedules(links)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("policies = %d", len(ranked))
	}
	for _, a := range ranked {
		if a.Min() <= 0 {
			t.Errorf("%s starves a link", a.Policy)
		}
	}
}
