// Package llama is a software reproduction of LLAMA — the Low-power
// Lattice of Actuated Metasurface Antennas from "Pushing the Physical
// Limits of IoT Devices with Programmable Metasurfaces" (NSDI 2021).
//
// LLAMA mitigates the 10–15 dB polarization-mismatch loss of cheap,
// single-antenna IoT devices by placing a varactor-tuned polarization
// rotator (a stack of quarter-wave plates around a birefringent layer,
// built on low-cost FR4) in the radio environment, and closing a control
// loop: the receiver reports RSSI, a controller sweeps the two bias
// voltages coarse-to-fine (Algorithm 1 of the paper), and the surface
// settles at the rotation angle that re-aligns the link.
//
// This package is the stable entry point. It exposes the surface and
// channel models, the closed-loop system (in-process or over real
// SCPI/TCP + telemetry/UDP sockets) and the experiment registry that
// regenerates every table and figure of the paper's evaluation:
//
//	surface := llama.NewSurface(llama.OptimizedFR4(llama.DefaultCarrierHz))
//	loop, err := llama.NewLoop(llama.LoopConfig{Seed: 1})
//	...
//	result, err := loop.Optimize(ctx)
//
// See examples/ for runnable scenarios and cmd/llama-bench for the
// evaluation harness.
package llama

import (
	"context"
	"fmt"
	"time"

	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/control"
	"github.com/llama-surface/llama/internal/core"
	"github.com/llama-surface/llama/internal/experiments"
	"github.com/llama-surface/llama/internal/mat2"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/store"
	"github.com/llama-surface/llama/internal/units"
)

// Frequency constants of the bands the paper targets.
const (
	// DefaultCarrierHz is the paper's default USRP carrier (2.44 GHz).
	DefaultCarrierHz = units.DefaultCarrierHz
	// ISMBandLow and ISMBandHigh bound the 2.4 GHz ISM band.
	ISMBandLow  = units.ISMBandLow
	ISMBandHigh = units.ISMBandHigh
	// RFIDBandCenter is the 900 MHz band of the §3.2 rescaled design.
	RFIDBandCenter = units.RFIDBandCenter
)

// Surface is the programmable metasurface: bias it with SetBias, query
// its Jones matrix, efficiency (Eq. 11) and rotation angle.
type Surface = metasurface.Surface

// Design describes a buildable surface stack.
type Design = metasurface.Design

// Mode selects transmissive or reflective deployment (Fig. 14).
type Mode = metasurface.Mode

// Deployment modes.
const (
	Transmissive = metasurface.Transmissive
	Reflective   = metasurface.Reflective
)

// Mat2 is the 2×2 complex Jones matrix surface queries return.
type Mat2 = mat2.Mat

// BatchPoint is one operating point — carrier frequency and the two bias
// voltages — of a batched surface evaluation.
type BatchPoint = metasurface.BatchPoint

// Axis selects a principal polarization axis of the surface.
type Axis = metasurface.Axis

// Principal axes.
const (
	AxisX = metasurface.AxisX
	AxisY = metasurface.AxisY
)

// JonesEfficiency extracts the power efficiency along one axis (Eq. 11)
// from a Jones matrix returned by Surface.Jones or Surface.JonesBatch.
func JonesEfficiency(m Mat2, axis Axis) float64 {
	return metasurface.JonesEfficiency(m, axis)
}

// Scene is a polarization-aware radio configuration: endpoints, geometry,
// optional surface, environment.
type Scene = channel.Scene

// Geometry fixes scene distances.
type Geometry = channel.Geometry

// Environment is the multipath surrounding.
type Environment = channel.Environment

// SweepConfig parameterizes the Algorithm 1 bias search.
type SweepConfig = control.SweepConfig

// SweepResult is the outcome of a bias search.
type SweepResult = control.Result

// OptimizedFR4 returns the paper's contribution: the low-cost two-layer
// FR4 polarization rotator, calibrated for the given carrier.
func OptimizedFR4(centerHz float64) Design {
	return metasurface.OptimizedFR4Design(centerHz)
}

// NaiveFR4 returns the Fig. 9 straw man: the scaled 10 GHz geometry
// fabricated on FR4, whose loss tangent ruins it.
func NaiveFR4(centerHz float64) Design {
	return metasurface.NaiveFR4Design(centerHz)
}

// Rogers5880 returns the Fig. 8 reference design on the expensive
// low-loss laminate.
func Rogers5880(centerHz float64) Design {
	return metasurface.Rogers5880Design(centerHz)
}

// NewSurface builds a Surface, panicking on an invalid design — intended
// for the prefab designs above. Use metasurface.New via BuildSurface for
// error-returning construction of custom designs.
func NewSurface(d Design) *Surface {
	return metasurface.MustNew(d)
}

// BuildSurface builds a Surface from a (possibly custom) design,
// returning a descriptive error when the design is unbuildable.
func BuildSurface(d Design) (*Surface, error) {
	return metasurface.New(d)
}

// CacheStats reports response-table hit/miss counters in three views:
// per surface via Surface.CacheStats, per design via Surface.TableStats,
// process-wide via GlobalCacheStats. Response tables are keyed by a
// fingerprint of the design's physical parameters and shared by every
// surface of that design, so one surface's computation is every
// sibling's hit.
type CacheStats = metasurface.CacheStats

// SetCaching switches the shared response tables on or off process-wide
// (on by default). Outputs are bit-identical either way — the tables
// memoize pure physics evaluations — so disabling them is only useful
// for A/B timing of the uncached kernels.
func SetCaching(on bool) { metasurface.SetCaching(on) }

// CachingEnabled reports whether the response tables are on.
func CachingEnabled() bool { return metasurface.CachingEnabled() }

// GlobalCacheStats returns the process-wide response-table counters
// aggregated across every surface (monotone; snapshot and subtract for
// windowed measurements).
func GlobalCacheStats() CacheStats { return metasurface.GlobalCacheStats() }

// SetLUT switches the opt-in approximate response mode on or off
// process-wide (off by default): per-axis responses come from each
// design's precomputed dense (bias, freq) grid by bilinear interpolation
// instead of exact evaluation. Outputs are NOT bit-identical to exact
// mode — they stay within the tested error bound (|ΔS21| ≤ 0.05 on the
// default 121×33 grid) — so use it only where approximate responses are
// acceptable, e.g. wide design-space scans. Operating points outside
// the grid fall back to the exact path. See cmd/llama-bench's -lut flag.
func SetLUT(on bool) { metasurface.SetLUT(on) }

// LUTEnabled reports whether the approximate LUT mode is on.
func LUTEnabled() bool { return metasurface.LUTEnabled() }

// LUTStats counts approximate-mode lookups — grid-interpolated answers
// and out-of-grid exact fallbacks — kept strictly separate from the
// exact-table CacheStats.
type LUTStats = metasurface.LUTStats

// GlobalLUTStats returns the process-wide approximate-mode counters
// (monotone; snapshot and subtract for windowed measurements).
func GlobalLUTStats() LUTStats { return metasurface.GlobalLUTStats() }

// Absorber returns the paper's controlled environment (no multipath).
func Absorber() Environment { return channel.Absorber() }

// Laboratory returns a seeded multipath-rich indoor environment with n
// scatterers (§5.1.2's laboratory).
func Laboratory(seed int64, n int) Environment { return channel.Laboratory(seed, n) }

// MismatchedLink returns the paper's standard bench: endpoints with
// orthogonal polarizations at txRx meters, the surface (nil for the
// baseline) halfway between, absorber walls.
func MismatchedLink(surface *Surface, txRx float64) *Scene {
	return channel.DefaultScene(surface, txRx)
}

// DefaultSweep returns the paper's operating point: N=2 iterations, T=5
// switches per axis, 0–30 V at the supply's 50 Hz switch limit, costing
// 0.02·N·T² = 1 s.
func DefaultSweep() SweepConfig { return control.DefaultSweepConfig() }

// LoopConfig configures a closed-loop deployment (see core.Config for
// field semantics). The zero value reproduces the paper's 48 cm
// mismatched transmissive bench.
type LoopConfig = core.Config

// Loop is the in-process closed-loop system: surface, scene, supply and
// measurement path on a shared virtual timeline.
type Loop struct {
	sys *core.System
}

// NewLoop builds a closed-loop system.
func NewLoop(cfg LoopConfig) (*Loop, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("llama: %w", err)
	}
	return &Loop{sys: sys}, nil
}

// Surface returns the deployed surface.
func (l *Loop) Surface() *Surface { return l.sys.Surface }

// Scene returns the radio scene (mutate endpoints/environment before
// optimizing to model other deployments).
func (l *Loop) Scene() *Scene { return l.sys.Scene }

// Optimize runs the paper's Algorithm 1 and leaves the surface at the
// best bias found.
func (l *Loop) Optimize(ctx context.Context) (SweepResult, error) {
	return l.sys.Optimize(ctx, control.DefaultSweepConfig())
}

// OptimizeWith runs a custom sweep configuration.
func (l *Loop) OptimizeWith(ctx context.Context, cfg SweepConfig) (SweepResult, error) {
	return l.sys.Optimize(ctx, cfg)
}

// FullScan runs the exhaustive reference sweep with the given voltage
// step (1 V reproduces the paper's ~30 s scan).
func (l *Loop) FullScan(ctx context.Context, stepV float64) (SweepResult, error) {
	return l.sys.FullScan(ctx, control.DefaultSweepConfig(), stepV)
}

// GainDB returns the current improvement over the no-surface baseline —
// the quantity Figs. 16/17/22 report.
func (l *Loop) GainDB() float64 { return l.sys.CurrentDBm() - l.sys.BaselineDBm() }

// ReceivedDBm returns the current (noiseless) received power.
func (l *Loop) ReceivedDBm() float64 { return l.sys.CurrentDBm() }

// BaselineDBm returns the received power with the surface removed.
func (l *Loop) BaselineDBm() float64 { return l.sys.BaselineDBm() }

// ElapsedVirtual returns the virtual time consumed so far (sweep pacing
// at the supply's 50 Hz switch limit).
func (l *Loop) ElapsedVirtual() time.Duration { return l.sys.Clock.Now() }

// CacheStats returns the deployed surface's response-cache counters:
// how much of the loop's sweep physics was answered from memory.
func (l *Loop) CacheStats() CacheStats { return l.sys.CacheStats() }

// NetworkedLoop is the closed loop running over real loopback sockets:
// SCPI/TCP to the supply, binary UDP telemetry from the receiver.
type NetworkedLoop struct {
	ns *core.NetworkedSystem
}

// StartNetworkedLoop brings up the sockets; Close must be called.
func StartNetworkedLoop(ctx context.Context, cfg LoopConfig) (*NetworkedLoop, error) {
	ns, err := core.StartNetworked(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("llama: %w", err)
	}
	return &NetworkedLoop{ns: ns}, nil
}

// InstrumentID queries the bias supply's *IDN? over the SCPI session.
func (n *NetworkedLoop) InstrumentID() (string, error) { return n.ns.InstrumentID() }

// Optimize runs Algorithm 1 across the network legs.
func (n *NetworkedLoop) Optimize(ctx context.Context) (SweepResult, error) {
	return n.ns.Optimize(ctx, control.DefaultSweepConfig())
}

// GainDB returns the current improvement over the no-surface baseline.
func (n *NetworkedLoop) GainDB() float64 {
	return n.ns.CurrentDBm() - n.ns.BaselineDBm()
}

// Surface returns the deployed surface.
func (n *NetworkedLoop) Surface() *Surface { return n.ns.Surface }

// LostReports returns the telemetry datagram loss counter.
func (n *NetworkedLoop) LostReports() int { return n.ns.LostReports() }

// Close releases the sockets.
func (n *NetworkedLoop) Close() error { return n.ns.Close() }

// ExperimentIDs lists the registered paper artefacts and ablations.
func ExperimentIDs() []string { return experiments.IDs() }

// DescribeExperiment returns an experiment's one-line summary.
func DescribeExperiment(id string) string { return experiments.Describe(id) }

// ExperimentResult is a regenerated table/figure.
type ExperimentResult = experiments.Result

// ExperimentOptions selects which experiments to run, across which
// replication seeds, how wide the worker pool fans out, and whether each
// experiment's sweep rows shard into per-point jobs (ShardRows) so a
// single experiment can saturate the pool on its own. StoreDir persists
// every computed (experiment, seed) table into a durable results store;
// Resume reuses valid stored cells so a later run with a grown seed set
// recomputes only the missing seeds — output stays bit-identical to a
// fresh run either way.
type ExperimentOptions = experiments.Options

// ExperimentReport is the outcome of an engine run: per-seed tables in
// ID order, per-experiment wall time, row counts and shard speedup, and
// (for multi-seed runs) the mean±stddev aggregates.
type ExperimentReport = experiments.Report

// ReplicatedExperiment is one experiment aggregated across seeds.
type ReplicatedExperiment = experiments.ReplicatedResult

// ExperimentEngine is the concurrent multi-seed experiment executor.
type ExperimentEngine = experiments.Engine

// RunExperiment regenerates one paper artefact by ID (e.g. "fig16",
// "tab1") with the given seed.
func RunExperiment(ctx context.Context, id string, seed int64) (*ExperimentResult, error) {
	return experiments.Run(ctx, id, seed)
}

// RunExperiments executes the selected experiments concurrently across
// the configured seeds and worker pool. The zero Options value runs the
// whole registry once with seed 1 at GOMAXPROCS workers; with ShardRows
// set, each experiment's sweep additionally splits into per-row jobs so
// even a single experiment saturates the pool. Results are bit-identical
// to a serial run regardless of concurrency or sharding.
func RunExperiments(ctx context.Context, opts ExperimentOptions) (*ExperimentReport, error) {
	return experiments.Execute(ctx, opts)
}

// ExperimentRunSpec describes one scheduler submission: experiment IDs
// (nil = all), replication seeds (nil = {1}), row sharding/batching,
// and whether to resume from the scheduler's results store.
type ExperimentRunSpec = experiments.RunSpec

// ExperimentRunHandle tracks one submitted run: Progress while it
// executes, Cancel to stop it (completed cells still persist), Done to
// wait, and Report for the finished tables.
type ExperimentRunHandle = experiments.RunHandle

// ExperimentProgress is a point-in-time snapshot of a submitted run.
type ExperimentProgress = experiments.Progress

// ExperimentScheduler is the long-lived execution core under
// RunExperiments and cmd/llama-serve: one bounded worker pool serving
// many concurrent submissions, each bit-identical to a serial run of
// the same spec regardless of what shares the pool.
type ExperimentScheduler = experiments.Scheduler

// NewExperimentScheduler starts a long-lived scheduler: workers bounds
// the shared pool (≤0 = GOMAXPROCS) and storeDir, when non-empty, opens
// (creating if needed) the durable results store the scheduler persists
// into and resumes from. Close the scheduler to release the pool;
// completed cells of in-flight submissions persist on Close.
func NewExperimentScheduler(workers int, storeDir string) (*ExperimentScheduler, error) {
	cfg := experiments.SchedulerConfig{Workers: workers}
	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			return nil, fmt.Errorf("llama: %w", err)
		}
		cfg.Store = st
	}
	return experiments.NewScheduler(cfg), nil
}

// RangeExtension converts a link-budget gain in dB to the Friis range
// extension factor the paper quotes (15 dB → 5.6×).
func RangeExtension(gainDB float64) float64 { return units.FriisRangeExtension(gainDB) }
