// Surfacedesign: walk the §3.2 design space the way the paper did —
// compare the expensive Rogers 5880 reference, the naive FR4 port and the
// optimized thin FR4 stack on transmission efficiency, bandwidth,
// rotation range and bill of materials; then rescale to 900 MHz.
package main

import (
	"fmt"

	"github.com/llama-surface/llama"
	"github.com/llama-surface/llama/internal/metasurface"
)

func main() {
	fmt.Println("design                      peak-eff   -5dB-BW   rotation(2,15V)  BoM        $/unit")
	fmt.Println("------                      --------   -------   ---------------  ---        ------")
	for _, d := range []llama.Design{
		llama.Rogers5880(llama.DefaultCarrierHz),
		llama.NaiveFR4(llama.DefaultCarrierHz),
		llama.OptimizedFR4(llama.DefaultCarrierHz),
		llama.OptimizedFR4(llama.RFIDBandCenter),
	} {
		surf := llama.NewSurface(d)
		surf.SetBias(8, 8)
		f0 := d.CenterHz
		eff := surf.EfficiencyDB(metasurface.AxisX, f0)
		bw := surf.BandwidthAboveDB(-5, f0*0.8, f0*1.2, f0/500) / 1e6
		surf.SetBias(2, 15)
		rot := surf.RotationDegrees(f0)
		bom := d.BillOfMaterials()
		fmt.Printf("%-26s %6.1f dB %6.0f MHz %12.1f°     $%-8.0f $%.2f\n",
			d.Name, eff, bw, rot, bom.Total(), bom.PerUnit(d.Units()))
	}
	fmt.Println("\nthe paper's argument in one table: the naive FR4 port throws away the Rogers")
	fmt.Println("performance, while the optimized thin two-layer FR4 stack recovers it at ~1/10 the cost")
	fmt.Println("(Figs. 8–10 and the §4 cost accounting), and the geometry rescales to 900 MHz (§3.2)")
}
