// Respiration: the §5.2.2 sensing case study. At 5 mW the breathing of a
// person between the transceiver pair and the surface is invisible in the
// RSSI stream; introducing the reflective surface lifts the chest-motion
// signature above the clutter and the rate becomes readable.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/llama-surface/llama"
	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/metasurface"
	"github.com/llama-surface/llama/internal/sensing"
	"github.com/llama-surface/llama/internal/simclock"
)

func scene(surf *llama.Surface) *llama.Scene {
	sc := channel.DefaultScene(surf, 0.70)
	sc.Mode = metasurface.Reflective
	sc.Geom = llama.Geometry{TxRx: 0.70, TxSurface: 2.0, SurfaceRx: 2.0}
	sc.TxPowerW = 5e-3
	sc.Tx.Orientation = 0
	sc.MeasurementSaturation = 0
	return sc
}

func main() {
	surf := llama.NewSurface(llama.OptimizedFR4(llama.DefaultCarrierHz))
	surf.SetBias(8, 8)

	fmt.Println("scenario: respiration monitoring at 5 mW, person 2 m from the surface")
	for _, setup := range []struct {
		name string
		s    *llama.Surface
	}{
		{"without surface", nil},
		{"with surface", surf},
	} {
		mon, err := sensing.NewMonitor(scene(setup.s), sensing.DefaultBreather(), 10, 0.4)
		if err != nil {
			log.Fatal(err)
		}
		rec := mon.Record(60, simclock.RNG(5, "respiration"))
		analysis, err := sensing.Analyze(rec, mon.SampleRateHz)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", setup.name)
		fmt.Printf("  spectral peak %.1f dB over band floor (threshold %d dB)\n",
			analysis.PeakSNRdB, sensing.DetectionThresholdDB)
		if analysis.Detected {
			fmt.Printf("  breathing DETECTED at %.2f Hz = %.0f breaths/min\n",
				analysis.RateHz, analysis.RateHz*60)
		} else {
			fmt.Println("  breathing NOT detectable")
		}
		fmt.Printf("  RSSI strip (first 30 s):\n  %s\n", sparkline(rec[:300]))
	}
}

// sparkline renders an RSSI series as a coarse ASCII strip.
func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	min, max := xs[0], xs[0]
	for _, v := range xs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	levels := []byte("_.-=^")
	var sb strings.Builder
	for i := 0; i < len(xs); i += 5 {
		frac := 0.0
		if max > min {
			frac = (xs[i] - min) / (max - min)
		}
		idx := int(frac * float64(len(levels)-1))
		sb.WriteByte(levels[idx])
	}
	return sb.String()
}
