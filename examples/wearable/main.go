// Wearable: a BLE health tracker on a moving wrist (Fig. 1's arm-swing
// scenario). The wearable's polarization drifts as the arm moves; the
// controller re-optimizes the reflective ceiling surface whenever the
// link degrades, tracking the orientation through the day.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/llama-surface/llama"
	"github.com/llama-surface/llama/internal/metasurface"
)

func main() {
	cfg := llama.LoopConfig{
		Seed: 99,
		Mode: metasurface.Reflective,
		Geom: llama.Geometry{TxRx: 2.0, TxSurface: 1.5, SurfaceRx: 1.5},
	}
	loop, err := llama.NewLoop(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scenario: BLE wearable under a reflective ceiling surface; arm orientation drifts")
	fmt.Println("pose      wrist-angle  baseline    optimized    gain   re-tuned-bias")

	// A day of arm poses: typing, walking (swinging), phone call,
	// resting. Each pose re-orients the wearable's chip antenna.
	poses := []struct {
		name string
		deg  float64
	}{
		{"typing", 15},
		{"walking", 70},
		{"phone-call", 90},
		{"resting", 40},
		{"stretching", 120},
	}
	for _, pose := range poses {
		loop.Scene().Tx.Orientation = pose.deg * math.Pi / 180
		base := loop.BaselineDBm()
		if _, err := loop.Optimize(context.Background()); err != nil {
			log.Fatal(err)
		}
		vx, vy := loop.Surface().Bias()
		fmt.Printf("%-10s %8.0f° %9.1f dBm %9.1f dBm %6.1f dB   (%.1fV, %.1fV)\n",
			pose.name, pose.deg, base, loop.ReceivedDBm(), loop.GainDB(), vx, vy)
	}
	fmt.Println("\nthe controller keeps the link above the mismatch floor across every pose —")
	fmt.Println("no hardware change on the wearable (the paper's core deployment claim)")
}
