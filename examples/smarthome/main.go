// Smarthome: a Wi-Fi AP talking to an ESP8266 plug through a wall with an
// embedded LLAMA surface. The device is installed sideways (orthogonal
// polarization, Fig. 1's motivating scenario), and the whole control loop
// runs over real sockets: SCPI/TCP to the bias supply and binary UDP
// telemetry from the receiver — the networked deployment of Fig. 5.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"github.com/llama-surface/llama"
	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/devices"
	"github.com/llama-surface/llama/internal/signal"
	"github.com/llama-surface/llama/internal/simclock"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Wall-mounted surface 2 m from the AP, plug on the far side.
	cfg := llama.LoopConfig{
		Seed: 7,
		Geom: llama.Geometry{TxRx: 3.0, TxSurface: 2.0, SurfaceRx: 1.0},
		Env:  llama.Laboratory(7, 8), // a real flat has multipath
	}
	loop, err := llama.StartNetworkedLoop(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer loop.Close()

	idn, err := loop.InstrumentID()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bias supply:   %s\n", idn)
	fmt.Printf("scenario:      AP ↔ ESP8266 smart plug through the surface wall, plug rotated 90°\n")

	res, err := loop.Optimize(ctx)
	if err != nil {
		log.Fatal(err)
	}
	vx, vy := loop.Surface().Bias()
	fmt.Printf("controller:    %d RSSI reports, optimum Vx=%.1f V Vy=%.1f V\n",
		len(res.Samples), vx, vy)
	fmt.Printf("link gain:     %.1f dB\n", loop.GainDB())

	// What the plug's RSSI register sees before/after, device quirks
	// (quantization, estimator noise) included.
	rng := simclock.RNG(7, "smarthome")
	sceneWith := channel.DefaultScene(loop.Surface(), 3.0)
	sceneWith.Geom = channel.Geometry{TxRx: 3.0, TxSurface: 2.0, SurfaceRx: 1.0}
	sceneWith.Env = llama.Laboratory(7, 8)
	sceneBare := *sceneWith
	sceneBare.Surface = nil
	linkWith, err := devices.NewLink(devices.NetgearAP, devices.ESP8266, 0, math.Pi/2, sceneWith)
	if err != nil {
		log.Fatal(err)
	}
	linkBare, err := devices.NewLink(devices.NetgearAP, devices.ESP8266, 0, math.Pi/2, &sceneBare)
	if err != nil {
		log.Fatal(err)
	}
	mWith, sdWith := signal.MeanAndStd(linkWith.SampleRSSI(500, rng))
	mBare, sdBare := signal.MeanAndStd(linkBare.SampleRSSI(500, rng))
	fmt.Printf("plug RSSI:     without surface %5.1f ± %.1f dBm\n", mBare, sdBare)
	fmt.Printf("               with surface    %5.1f ± %.1f dBm (Fig. 20's distribution shift)\n", mWith, sdWith)
}
