// Tracking: continuous operation under motion. A wearable swings with the
// user's gait (sinusoidal arm swing); the tracker escalates between
// holding, local refinement and full re-sweeps, and the run ends with the
// switch-budget accounting that makes continuous LLAMA operation cheap.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/llama-surface/llama"
	"github.com/llama-surface/llama/internal/channel"
	"github.com/llama-surface/llama/internal/units"
)

func main() {
	loop, err := llama.NewLoop(llama.LoopConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := loop.NewTracker(llama.DefaultTrackerConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := tracker.Start(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial optimum: %.1f dBm (gain %.1f dB)\n\n", loop.ReceivedDBm(), loop.GainDB())

	// A slow walk: the wrist swings ±35° around vertical at 0.5 Hz (the
	// tracker steps at 5 Hz, so each step sees a few degrees of motion).
	swing := channel.ArmSwing{
		MeanRad:      units.Radians(90),
		AmplitudeRad: units.Radians(35),
		PeriodS:      2,
	}
	fmt.Println("  t      wrist   action     power")
	for step := 0; step <= 20; step++ {
		tm := time.Duration(step) * 200 * time.Millisecond
		loop.Scene().Tx.Orientation = swing.OrientationAt(tm)
		action, power, err := tracker.Step(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.1fs %7.0f°  %-9s %7.1f dBm\n",
			tm.Seconds(), units.Degrees(swing.OrientationAt(tm)), action, power)
	}

	stats := tracker.Stats()
	fmt.Printf("\nbudget: %d holds, %d refines, %d re-sweeps → %d supply switches total\n",
		stats.Holds, stats.Refines, stats.Resweeps, stats.Switches)
	fmt.Printf("(a naive re-sweep per step would have cost %d switches)\n", 21*51)
}
