// Quickstart: build a LLAMA surface, drop it into a mismatched IoT link,
// run the paper's Algorithm 1 bias sweep and print the before/after link
// budget — the 30-second tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/llama-surface/llama"
)

func main() {
	// A closed-loop deployment with every default from the paper: the
	// optimized FR4 surface at 2.44 GHz, a 48 cm mismatched transmissive
	// bench behind absorber, a 50 Hz bias supply.
	loop, err := llama.NewLoop(llama.LoopConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	before := loop.BaselineDBm()
	fmt.Printf("mismatched link without surface: %6.1f dBm\n", before)

	// Algorithm 1: coarse-to-fine sweep over the two bias voltages,
	// N=2 iterations × T²=25 measurements, 1 s of (virtual) time.
	res, err := loop.Optimize(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	vx, vy := loop.Surface().Bias()
	fmt.Printf("optimal bias found:              Vx=%.1f V, Vy=%.1f V (%d measurements)\n",
		vx, vy, len(res.Samples))
	fmt.Printf("with surface at optimum:         %6.1f dBm\n", loop.ReceivedDBm())
	fmt.Printf("link gain:                       %6.1f dB → %.1f× Friis range extension\n",
		loop.GainDB(), llama.RangeExtension(loop.GainDB()))
	fmt.Printf("surface rotation at optimum:     %6.1f°\n",
		loop.Surface().RotationDegrees(llama.DefaultCarrierHz))
}
