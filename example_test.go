package llama_test

// Godoc examples: compact, runnable documentation of the public API.

import (
	"context"
	"fmt"
	"log"

	"github.com/llama-surface/llama"
)

// Example shows the complete before/after story on the paper's bench.
func Example() {
	loop, err := llama.NewLoop(llama.LoopConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := loop.Optimize(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gain over mismatched baseline: %.0f dB\n", loop.GainDB())
	// Output: gain over mismatched baseline: 18 dB
}

// ExampleNewSurface demonstrates direct surface control: bias the panel
// and read the polarization rotation it applies.
func ExampleNewSurface() {
	surface := llama.NewSurface(llama.OptimizedFR4(llama.DefaultCarrierHz))
	surface.SetBias(2, 15) // the Table 1 corner
	fmt.Printf("rotation: %.0f degrees\n", surface.RotationDegrees(llama.DefaultCarrierHz))
	// Output: rotation: 50 degrees
}

// ExampleRunExperiment regenerates a paper artefact programmatically.
func ExampleRunExperiment() {
	res, err := llama.RunExperiment(context.Background(), "tab1", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d rows × %d columns\n", res.ID, len(res.Rows), len(res.Columns))
	// Output: tab1: 7 rows × 8 columns
}

// ExampleRunExperiments runs a subset of the registry through the
// concurrent multi-seed engine and reads the aggregated error bars.
func ExampleRunExperiments() {
	report, err := llama.RunExperiments(context.Background(), llama.ExperimentOptions{
		IDs:         []string{"tab1"},
		Seeds:       []int64{1, 2, 3},
		Concurrency: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	agg := report.Replicated[0]
	fmt.Printf("%s over %d seeds: %d rows × %d columns\n",
		agg.ID, len(agg.Seeds), len(agg.Mean), len(agg.Columns))
	// Output: tab1 over 3 seeds: 7 rows × 8 columns
}

// ExampleRangeExtension converts the headline link gain into the Friis
// range factor the paper quotes.
func ExampleRangeExtension() {
	fmt.Printf("15 dB → %.1fx range\n", llama.RangeExtension(15))
	// Output: 15 dB → 5.6x range
}
