package llama

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPrefabDesignsBuild(t *testing.T) {
	for _, d := range []Design{
		OptimizedFR4(DefaultCarrierHz),
		NaiveFR4(DefaultCarrierHz),
		Rogers5880(DefaultCarrierHz),
		OptimizedFR4(RFIDBandCenter),
	} {
		if _, err := BuildSurface(d); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestNewSurfacePanicsOnInvalid(t *testing.T) {
	d := OptimizedFR4(DefaultCarrierHz)
	d.BFSLayers = 0
	defer func() {
		if recover() == nil {
			t.Error("NewSurface should panic on invalid design")
		}
	}()
	NewSurface(d)
}

func TestMismatchedLinkBaseline(t *testing.T) {
	sc := MismatchedLink(nil, 0.48)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if p := sc.ReceivedPowerDBm(); math.IsInf(p, 0) || p > -20 {
		t.Errorf("mismatched baseline = %v dBm", p)
	}
}

func TestLoopOptimizeHeadline(t *testing.T) {
	loop, err := NewLoop(LoopConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := loop.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if loop.GainDB() < 6 {
		t.Errorf("gain = %.1f dB, want ≥ 6 (paper: up to 15)", loop.GainDB())
	}
	if res.BestPowerDBm < loop.BaselineDBm() {
		t.Error("optimum below baseline")
	}
	// Sweep pacing: ≈1 s of virtual time (0.02·N·T²).
	if el := loop.ElapsedVirtual(); el < time.Second || el > 1500*time.Millisecond {
		t.Errorf("virtual elapsed = %v", el)
	}
	// Range extension sanity: ≥2× at ≥6 dB.
	if RangeExtension(loop.GainDB()) < 2 {
		t.Errorf("range extension = %v", RangeExtension(loop.GainDB()))
	}
}

func TestLoopFullScan(t *testing.T) {
	loop, err := NewLoop(LoopConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := loop.FullScan(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 36 {
		t.Errorf("samples = %d, want 6×6", len(res.Samples))
	}
}

func TestLoopSurfaceAccess(t *testing.T) {
	loop, err := NewLoop(LoopConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	loop.Surface().SetBias(2, 15)
	if r := loop.Surface().RotationDegrees(DefaultCarrierHz); r < 35 {
		t.Errorf("rotation at (2,15) = %v°", r)
	}
	if loop.Scene() == nil {
		t.Error("scene should be reachable")
	}
}

func TestNetworkedLoop(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	loop, err := StartNetworkedLoop(ctx, LoopConfig{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	idn, err := loop.InstrumentID()
	if err != nil || !strings.Contains(idn, "2230G") {
		t.Fatalf("IDN = %q, %v", idn, err)
	}
	if _, err := loop.Optimize(ctx); err != nil {
		t.Fatal(err)
	}
	if loop.GainDB() < 5 {
		t.Errorf("networked gain = %.1f dB", loop.GainDB())
	}
	if loop.LostReports() != 0 {
		t.Errorf("lost %d reports", loop.LostReports())
	}
	if loop.Surface() == nil {
		t.Error("surface should be reachable")
	}
}

func TestExperimentRegistryReachable(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		if DescribeExperiment(id) == "" {
			t.Errorf("no description for %s", id)
		}
	}
	res, err := RunExperiment(context.Background(), "tab1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "tab1" || len(res.Rows) != 7 {
		t.Errorf("tab1 shape: %+v", res.ID)
	}
	if _, err := RunExperiment(context.Background(), "bogus", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestEnvironments(t *testing.T) {
	if len(Absorber().Scatterers) != 0 {
		t.Error("absorber should be clean")
	}
	if len(Laboratory(1, 8).Scatterers) != 8 {
		t.Error("laboratory scatterer count")
	}
}

func TestRangeExtension(t *testing.T) {
	if got := RangeExtension(15); math.Abs(got-5.62) > 0.01 {
		t.Errorf("RangeExtension(15) = %v", got)
	}
}
